"""The assurance service CLI: ``python -m repro.service <command>``.

``serve``
    Run the durable campaign server: HTTP/JSON API over a priority
    scheduler, every job in its own directory under ``--root``.  Kill it
    any way you like — a restart re-queues in-flight jobs and resumes
    them from their engine journals.
``submit``
    Submit a job (``campaign`` / ``falsify`` / ``replay``) and print its
    id; ``--wait`` blocks until it settles.
``status``
    One job's record, or the whole job table.
``results``
    A finished job's result summary (and canonical report, if any).
``watch``
    Stream a job's NDJSON event feed until it settles.
``cancel``
    Cancel a queued or running job.

Client commands find the server through ``--url``, or through
``<root>/service.json`` (written by ``serve``) via ``--root``.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Sequence

from ..jsonutil import dumps as strict_dumps
from .api import serve
from .client import ServiceClient, ServiceError
from .jobs import CANCELLED, DONE, FAILED, QUEUED, known_job_kinds
from .scheduler import Scheduler
from .store import JobStore

#: Written next to the job store so client commands can find the server.
SERVICE_FILE = "service.json"


def cmd_serve(args: argparse.Namespace) -> int:
    from ..obs import configure_logging

    configure_logging(args.log_level)
    root = Path(args.root)
    root.mkdir(parents=True, exist_ok=True)
    store = JobStore(root)
    scheduler = Scheduler(
        store, workers=args.workers, max_jobs=args.max_jobs, backend=args.backend
    ).start()
    server, thread = serve(scheduler, host=args.host, port=args.port)
    import os

    (root / SERVICE_FILE).write_text(
        strict_dumps({"url": server.url, "pid": os.getpid()}, sort_keys=True) + "\n"
    )
    print(f"serving on {server.url} (root: {root})", flush=True)

    stop = threading.Event()

    def _signal(_signum: int, _frame: Any) -> None:
        stop.set()

    signal.signal(signal.SIGTERM, _signal)
    signal.signal(signal.SIGINT, _signal)
    stop.wait()
    print("shutting down...", file=sys.stderr, flush=True)
    server.shutdown()
    scheduler.stop(wait=True)
    return 0


def _client(args: argparse.Namespace) -> ServiceClient:
    url: Optional[str] = getattr(args, "url", None)
    if url is None:
        root = Path(getattr(args, "root", None) or "service-root")
        service_file = root / SERVICE_FILE
        if not service_file.exists():
            raise SystemExit(
                f"no --url given and {service_file} not found — is a server "
                f"running with --root {root}?"
            )
        url = json.loads(service_file.read_text())["url"]
    return ServiceClient(url)


def _load_spec(arg: Optional[str]) -> Dict[str, Any]:
    if not arg:
        return {}
    if arg.startswith("@"):
        text = Path(arg[1:]).read_text()
    else:
        text = arg
    spec = json.loads(text)
    if not isinstance(spec, dict):
        raise SystemExit("--spec must decode to a JSON object")
    return spec


def _print_record(record: Dict[str, Any]) -> None:
    progress = record.get("progress") or {}
    line = f"{record['id']}  {record['spec']['kind']:<9} {record['state']:<9}"
    if progress.get("total"):
        line += f" {progress.get('done', 0)}/{progress['total']}"
    if record.get("error"):
        line += f"  {record['error']}"
    print(line)


def cmd_submit(args: argparse.Namespace) -> int:
    client = _client(args)
    try:
        record = client.submit(
            args.kind,
            _load_spec(args.spec),
            priority=args.priority,
            jobs=args.jobs,
        )
    except ServiceError as exc:
        print(f"submit failed: {exc.message}", file=sys.stderr)
        return 1
    print(record["id"])
    if not args.wait:
        return 0
    final = client.wait(record["id"], timeout=args.timeout)
    _print_record(final)
    return _exit_code(final["state"])


def cmd_status(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.job_id:
        _print_record(client.job(args.job_id))
    else:
        for record in client.jobs():
            _print_record(record)
    return 0


def cmd_results(args: argparse.Namespace) -> int:
    client = _client(args)
    try:
        body = client.results(args.job_id)
    except ServiceError as exc:
        print(f"results unavailable: {exc.message}", file=sys.stderr)
        return 1
    print(strict_dumps(body, indent=2, sort_keys=True))
    return 0


def _report_queue_position(
    client: ServiceClient, job_id: str, poll_s: float = 0.5
) -> None:
    """While the job is queued, print its position in the dispatch line.

    A bare ``queued`` tells a tenant nothing about how long the wait is;
    the position (and the line length) comes from the scheduler's
    priority-ordered ``queued`` list in ``/v1/stats``.  Returns as soon
    as the job leaves the queue; prints only when the position moves.
    """
    import time

    last = None
    while client.job(job_id)["state"] == QUEUED:
        queued = client.stats().get("queued") or []
        if job_id in queued:
            position = queued.index(job_id) + 1
            if position != last:
                print(
                    f"{job_id}  queued  position {position}/{len(queued)}",
                    file=sys.stderr,
                    flush=True,
                )
                last = position
        time.sleep(poll_s)


def cmd_watch(args: argparse.Namespace) -> int:
    client = _client(args)
    _report_queue_position(client, args.job_id)
    for event in client.watch(args.job_id):
        print(strict_dumps(event, sort_keys=True), flush=True)
    return _exit_code(client.job(args.job_id)["state"])


def cmd_cancel(args: argparse.Namespace) -> int:
    client = _client(args)
    _print_record(client.cancel(args.job_id))
    return 0


def _exit_code(state: str) -> int:
    if state == DONE:
        return 0
    if state == FAILED:
        return 3
    if state == CANCELLED:
        return 4
    return 0


def _add_client_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--url", default=None, help="service URL (e.g. http://127.0.0.1:8642)"
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help=f"service root; reads the URL from <root>/{SERVICE_FILE}",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("serve", help="run the assurance job server")
    p.add_argument(
        "--root", type=Path, default=Path("service-root"),
        help="job store root directory (created if missing)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 binds an ephemeral port")
    p.add_argument(
        "--workers", type=int, default=2,
        help="global engine worker-slot budget shared by all running jobs",
    )
    p.add_argument(
        "--max-jobs", type=int, default=4,
        help="maximum concurrently running jobs",
    )
    p.add_argument(
        "--backend", default="local", choices=("local", "queue"),
        help="engine executor backend: 'local' (in-process pool) or "
        "'queue' (each job shards over its slot allocation as spooled "
        "host workers under <job_dir>/spool)",
    )
    p.add_argument(
        "--log-level", default="INFO",
        choices=("DEBUG", "INFO", "WARNING", "ERROR"),
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("submit", help="submit a job")
    _add_client_arguments(p)
    p.add_argument("--kind", required=True, choices=known_job_kinds())
    p.add_argument(
        "--spec", default=None,
        help="kind-specific JSON payload, inline or @file.json",
    )
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--jobs", type=int, default=1, help="requested engine fan-out")
    p.add_argument("--wait", action="store_true", help="block until the job settles")
    p.add_argument("--timeout", type=float, default=3600.0)
    p.set_defaults(fn=cmd_submit)

    p = sub.add_parser("status", help="job table, or one job's record")
    _add_client_arguments(p)
    p.add_argument("job_id", nargs="?", default=None)
    p.set_defaults(fn=cmd_status)

    p = sub.add_parser("results", help="a finished job's results")
    _add_client_arguments(p)
    p.add_argument("job_id")
    p.set_defaults(fn=cmd_results)

    p = sub.add_parser("watch", help="stream a job's events until it settles")
    _add_client_arguments(p)
    p.add_argument("job_id")
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser("cancel", help="cancel a queued or running job")
    _add_client_arguments(p)
    p.add_argument("job_id")
    p.set_defaults(fn=cmd_cancel)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())

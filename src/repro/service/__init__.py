"""The assurance campaign service: a durable job server over the engine.

Turns the batch campaign/search machinery into a long-lived server
(ROADMAP item: *campaign service mode*): jobs are submitted over an
HTTP/JSON API, scheduled by priority onto a bounded worker-slot pool,
executed by the existing :class:`~repro.exec.CampaignEngine` paths, and
persisted — spec, journal, traces, events, report — in one directory per
job.  The server holds no state that is not on disk: kill it mid-job and
a restart re-queues the orphaned job, whose engine journal turns the
re-run into a resume with a byte-identical final report.

* :mod:`repro.service.jobs` — job specs, lifecycle state machine, kind
  registry (``campaign`` / ``falsify`` / ``replay`` built in).
* :mod:`repro.service.store` — the on-disk job store (DESIGN.md §9).
* :mod:`repro.service.queue` — the priority queue with slot-aware pops.
* :mod:`repro.service.scheduler` — dispatcher + runner threads.
* :mod:`repro.service.api` — the stdlib ``http.server`` JSON API.
* :mod:`repro.service.client` — the stdlib HTTP client (CLI + tests).
* ``python -m repro.service`` — serve / submit / status / results /
  watch / cancel.
"""

from .api import ServiceServer, serve
from .client import ServiceClient, ServiceError
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    InvalidTransition,
    JobContext,
    JobRecord,
    JobSpec,
    get_job_kind,
    known_job_kinds,
    register_job_kind,
    unregister_job_kind,
)
from .queue import JobQueue
from .scheduler import Scheduler
from .store import JobStore, UnknownJob

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "InvalidTransition",
    "JobContext",
    "JobQueue",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "QUEUED",
    "RUNNING",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "TERMINAL_STATES",
    "UnknownJob",
    "get_job_kind",
    "known_job_kinds",
    "register_job_kind",
    "serve",
    "unregister_job_kind",
]

"""The campaign scheduler: priority dispatch onto a global worker budget.

One dispatcher thread pops queued jobs whose requested engine fan-out
fits the free worker slots (priority order, with backfill so a wide job
never starves narrow ones indefinitely) and hands each to its own runner
thread.  The runner drives the job's kind function — which runs the
existing :class:`~repro.exec.CampaignEngine` / search driver machinery,
journaled into the job's directory — and settles the record to
``done``/``failed``/``cancelled``.

Durability: every state change is saved through the
:class:`~repro.service.store.JobStore` *before* it is observable over
the API, and :meth:`Scheduler.recover` rebuilds the entire scheduler
state from the store on start — jobs found ``running`` were orphaned by
a dead server and go back on the queue; their kind runners resume from
the job directory's engine journal, so completed work is replayed, not
re-executed, and the final report is byte-identical to an uninterrupted
run.
"""

from __future__ import annotations

import logging
import threading
import time
import traceback
from typing import Callable, Dict, List, Optional

from .. import __version__
from ..exec import CampaignCancelled, ProgressEvent, TelemetryProgress
from ..obs.metrics import METRICS_FILE_NAME, write_metrics_json
from ..obs.telemetry import TelemetryRegistry
from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobContext,
    JobRecord,
    JobSpec,
    get_job_kind,
)
from .queue import JobQueue
from .store import JobStore

logger = logging.getLogger(__name__)

#: Version stamp of the ``/v1/stats`` payload shape.
STATS_SCHEMA_VERSION = 1

#: Every lifecycle state, for per-state job-count gauges (a state with
#: zero jobs still exposes an explicit 0, so scrapers see absence).
ALL_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)


def _transition_latency(record: JobRecord, from_state: str) -> Optional[float]:
    """Seconds from the latest ``from_state`` entry to the last transition.

    Timestamps are wall-clock (they survive restarts in ``state.json``),
    so clamp at zero in case the clock stepped backwards between them.
    """
    if not record.transitions:
        return None
    last = record.transitions[-1]
    for entry in reversed(record.transitions[:-1]):
        if entry.get("state") == from_state:
            try:
                return max(float(last["at"]) - float(entry["at"]), 0.0)
            except (KeyError, TypeError, ValueError):
                return None
    return None


class Scheduler:
    """Dispatch submitted jobs onto a bounded worker-slot pool.

    Args:
        store: the durable job store (one directory per job).
        workers: global engine-slot budget shared by all running jobs; a
            job asking for ``jobs=4`` occupies 4 slots (clamped to the
            budget, so a too-wide request degrades instead of deadlocks).
        max_jobs: cap on *concurrently running* jobs regardless of width.
        telemetry: optional shared registry for service counters.
    """

    def __init__(
        self,
        store: JobStore,
        *,
        workers: int = 2,
        max_jobs: int = 4,
        telemetry: Optional[TelemetryRegistry] = None,
        backend: str = "local",
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_jobs < 1:
            raise ValueError(f"max_jobs must be >= 1, got {max_jobs}")
        if backend not in ("local", "queue"):
            raise ValueError(f"unknown backend {backend!r} (want local|queue)")
        self.store = store
        self.workers = workers
        self.max_jobs = max_jobs
        # A queue-backend scheduler maps each job's slot allocation onto
        # that many spooled host workers instead of an in-process pool.
        self.backend = backend
        self.telemetry = telemetry or TelemetryRegistry()
        if store.telemetry is None:
            store.telemetry = self.telemetry
        self._started_at = time.monotonic()
        self.queue = JobQueue()
        self._cond = self.queue.condition
        self._free_slots = workers
        self._running: Dict[str, threading.Thread] = {}
        self._cancel_flags: Dict[str, threading.Event] = {}
        self._records: Dict[str, JobRecord] = {}
        self._user_cancelled: set = set()
        self._dispatcher: Optional[threading.Thread] = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Scheduler":
        self.recover()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="scheduler-dispatch", daemon=True
        )
        self._dispatcher.start()
        return self

    def stop(self, wait: bool = True, timeout: Optional[float] = 30.0) -> None:
        """Stop dispatching; signal running jobs to cancel-at-checkpoint.

        Jobs interrupted here stay ``running`` on disk — a restarted
        server re-queues and resumes them from their journals (this is
        the graceful flavour of the kill-and-restart path, not a
        distinct state machine).
        """
        self._stopping.set()
        self.queue.close()
        with self._cond:
            runners = list(self._running.values())
            for flag in self._cancel_flags.values():
                flag.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
        if wait:
            for thread in runners:
                thread.join(timeout=timeout)

    def recover(self) -> List[str]:
        """Rebuild queue state from the store; returns re-queued job ids.

        ``queued`` jobs simply re-enter the queue.  ``running`` jobs were
        orphaned by a dead server: transition them back to ``queued``
        (the one backward edge in the state machine) and re-queue — their
        journals make the re-run a resume.
        """
        recovered: List[str] = []
        for record in self.store.list():
            if record.state == QUEUED:
                self._records[record.id] = record
                self.queue.push(record.id, record.spec.priority, record.seq)
            elif record.state == RUNNING:
                record.transition(QUEUED)
                self.store.save(record)
                self.store.append_event(
                    record.id,
                    {"kind": "job_recovered", "job": record.id,
                     "recovered": record.recovered},
                )
                self._records[record.id] = record
                self.queue.push(record.id, record.spec.priority, record.seq)
                self.telemetry.counter("service.jobs_recovered").inc()
                recovered.append(record.id)
            else:
                self._records[record.id] = record
        if recovered:
            logger.info("recovered %d orphaned job(s): %s",
                        len(recovered), ", ".join(recovered))
        return recovered

    # ------------------------------------------------------------------
    # submission / queries / cancellation
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> JobRecord:
        spec.validate()
        record = self.store.create(spec)
        self.store.append_event(
            record.id,
            {"kind": "job_queued", "job": record.id, "spec": spec.to_dict()},
        )
        with self._cond:
            self._records[record.id] = record
        self.queue.push(record.id, spec.priority, record.seq)
        self.telemetry.counter("service.jobs_submitted").inc()
        return record

    def job(self, job_id: str) -> JobRecord:
        with self._cond:
            record = self._records.get(job_id)
        if record is not None:
            return record
        return self.store.load(job_id)

    def jobs(self) -> List[JobRecord]:
        with self._cond:
            known = dict(self._records)
        for record in self.store.list():
            known.setdefault(record.id, record)
        return sorted(known.values(), key=lambda r: r.seq)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a job: dequeue it, or flag a running one to stop.

        A running job settles to ``cancelled`` at its next engine
        checkpoint (between units) — already-journaled work is kept, so
        a later resubmission of the same spec resumes rather than
        restarts.  Terminal jobs are returned unchanged.
        """
        record = self.job(job_id)
        if record.terminal:
            return record
        with self._cond:
            if record.state == RUNNING:
                self._user_cancelled.add(job_id)
                flag = self._cancel_flags.get(job_id)
                if flag is not None:
                    flag.set()
                self.telemetry.counter("service.jobs_cancel_requested").inc()
                return record
        if self.queue.remove(job_id):
            # Event before state: a long-poller that observes a terminal
            # state must already be able to read the matching event.
            self.store.append_event(
                record.id, {"kind": "job_cancelled", "job": record.id}
            )
            record.transition(CANCELLED)
            self.store.save(record)
            self.telemetry.counter("service.jobs_cancelled").inc()
        return record

    def uptime_s(self) -> float:
        return time.monotonic() - self._started_at

    def collect(self) -> TelemetryRegistry:
        """Refresh point-in-time gauges into the registry and return it.

        Counters and histograms accumulate as things happen; gauges
        (queue depth, slot occupancy, per-state job counts) are derived
        state, recomputed at observation time so ``/v1/metrics`` and
        ``/v1/stats`` never expose a stale or phantom value — after
        :meth:`recover`, the per-state counts reflect the store, not
        whatever a dead server last believed.
        """
        by_state = {state: 0 for state in ALL_STATES}
        with self._cond:
            for record in self._records.values():
                by_state[record.state] = by_state.get(record.state, 0) + 1
            running = len(self._running)
            free = self._free_slots
        telemetry = self.telemetry
        telemetry.gauge("jobs.queue_depth").set(float(len(self.queue)))
        telemetry.gauge("jobs.running").set(float(running))
        for state, count in by_state.items():
            telemetry.gauge(f"jobs.state.{state}").set(float(count))
        telemetry.gauge("slots.free").set(float(free))
        telemetry.gauge("slots.busy").set(float(self.workers - free))
        telemetry.gauge("slots.total").set(float(self.workers))
        telemetry.gauge("service.uptime_s").set(self.uptime_s())
        return telemetry

    def stats(self) -> Dict[str, object]:
        telemetry = self.collect()
        with self._cond:
            running = sorted(self._running)
            free = self._free_slots
        return {
            "schema": STATS_SCHEMA_VERSION,
            "version": __version__,
            "uptime_s": round(self.uptime_s(), 3),
            "workers": self.workers,
            "free_slots": free,
            "max_jobs": self.max_jobs,
            "queued": self.queue.items(),
            "running": running,
            "telemetry": telemetry.snapshot(),
        }

    def wait_idle(self, timeout: float = 60.0) -> bool:
        """Test helper: block until nothing is queued or running."""
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._cond:
                busy = bool(self._running)
            if not busy and len(self.queue) == 0:
                return True
            time.sleep(0.02)
        return False

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _effective_jobs(self, record: JobRecord) -> int:
        return min(record.spec.jobs, self.workers)

    def _ready(self, job_id: str) -> bool:
        # Called under the queue/scheduler condition lock.
        if len(self._running) >= self.max_jobs:
            return False
        record = self._records.get(job_id)
        if record is None:
            return False
        return self._effective_jobs(record) <= self._free_slots

    def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            job_id = self.queue.pop_ready(self._ready, timeout=1.0)
            if job_id is None:
                continue
            with self._cond:
                record = self._records[job_id]
                slots = self._effective_jobs(record)
                self._free_slots -= slots
                flag = threading.Event()
                self._cancel_flags[job_id] = flag
                thread = threading.Thread(
                    target=self._run_job,
                    args=(record, slots, flag),
                    name=f"job-{job_id}",
                    daemon=True,
                )
                self._running[job_id] = thread
            thread.start()

    def _run_job(self, record: JobRecord, slots: int, flag: threading.Event) -> None:
        job_id = record.id
        job_dir = self.store.job_dir(job_id)
        record.transition(RUNNING)
        self.store.save(record)
        self.store.append_event(
            job_id, {"kind": "job_started", "job": job_id, "slots": slots}
        )
        self.telemetry.counter("service.jobs_started").inc()
        wait_s = _transition_latency(record, QUEUED)
        if wait_s is not None:
            self.telemetry.histogram("jobs.wait_s").record(wait_s)

        def record_progress(event: ProgressEvent) -> None:
            self.store.append_event(
                job_id,
                {
                    "kind": event.kind,
                    "job": job_id,
                    "done": event.done,
                    "total": event.total,
                    "key": event.key,
                    "status": event.status,
                    "cached": event.cached,
                },
            )
            if event.done or event.total:
                record.progress_done = event.done
                record.progress_total = event.total
                self.store.save(record)

        ctx = JobContext(
            job_dir=job_dir,
            jobs=slots,
            progress=TelemetryProgress(self.telemetry, inner=record_progress),
            cancel=flag.is_set,
            resolve_job_dir=self.store.job_dir,
            backend=self.backend,
            telemetry=self.telemetry,
        )
        try:
            kind = get_job_kind(record.spec.kind)
            result = kind.run(record.spec.spec, ctx)
        except CampaignCancelled:
            with self._cond:
                user_cancelled = job_id in self._user_cancelled
            if self._stopping.is_set() and not user_cancelled:
                # Graceful shutdown interrupted the job — back to the
                # queue: a restarted server resumes it from its journal.
                record.transition(QUEUED)
                self.store.save(record)
                self.store.append_event(
                    job_id, {"kind": "job_interrupted", "job": job_id}
                )
                self.telemetry.counter("service.jobs_interrupted").inc()
            else:
                # Event before terminal state (see Scheduler.cancel).
                self.store.append_event(
                    job_id, {"kind": "job_cancelled", "job": job_id}
                )
                record.transition(CANCELLED)
                self.store.save(record)
                self.telemetry.counter("service.jobs_cancelled").inc()
        except BaseException as exc:  # noqa: BLE001 - runner must settle the record
            detail = traceback.format_exc()
            error = f"{type(exc).__name__}: {exc}"
            self.store.write_error(job_id, detail)
            self.store.append_event(
                job_id, {"kind": "job_failed", "job": job_id, "error": error}
            )
            record.transition(FAILED, error=error)
            self.store.save(record)
            self.telemetry.counter("service.jobs_failed").inc()
            logger.warning("job %s failed: %s", job_id, error)
        else:
            self.store.append_event(
                job_id, {"kind": "job_done", "job": job_id, "result": result}
            )
            record.transition(DONE, result=result)
            self.store.save(record)
            self.telemetry.counter("service.jobs_done").inc()
        finally:
            with self._cond:
                self._free_slots += slots
                self._running.pop(job_id, None)
                self._cancel_flags.pop(job_id, None)
            run_s = _transition_latency(record, RUNNING)
            if run_s is not None:
                self.telemetry.histogram("jobs.run_s").record(run_s)
            self._snapshot_metrics(record, wait_s=wait_s, run_s=run_s)
            self.queue.kick()

    def _snapshot_metrics(
        self,
        record: JobRecord,
        *,
        wait_s: Optional[float],
        run_s: Optional[float],
    ) -> None:
        """Write ``metrics.json`` into the settled job's directory.

        The snapshot is the shared service registry (gauges refreshed)
        plus per-job meta, so batch CLIs read exactly what a scraper of
        ``GET /v1/metrics`` would have seen at settle time.  Best-effort:
        a snapshot failure never un-settles a job.
        """
        try:
            registry = self.collect()
            write_metrics_json(
                self.store.job_dir(record.id) / METRICS_FILE_NAME,
                registry,
                meta={
                    "job": record.id,
                    "state": record.state,
                    "wait_s": wait_s,
                    "run_s": run_s,
                },
            )
        except Exception:  # noqa: BLE001 - observability must not break settling
            logger.exception("failed to snapshot metrics for job %s", record.id)

"""Tests for offline trace verification."""

import pytest

from repro.analysis.trace_checks import (
    PropertyVerdict,
    check_trace,
    frames_to_trace,
    summarize,
)
from repro.env.recording import TraceFrame


def frames(values):
    return [
        TraceFrame(iteration=i, time=i * 0.1, world={"speed": v, "gap": 5.0, "label": "x"})
        for i, v in enumerate(values)
    ]


class TestFramesToTrace:
    def test_extracts_signals(self):
        trace = frames_to_trace(frames([1.0, 2.0, 3.0]), ["speed", "gap"])
        assert trace.value("speed", 1) == 2.0
        assert trace.value("gap", 2) == 5.0
        assert len(trace) == 3

    def test_empty_frames_rejected(self):
        with pytest.raises(ValueError):
            frames_to_trace([], ["speed"])

    def test_missing_signal_rejected(self):
        with pytest.raises(KeyError, match="missing"):
            frames_to_trace(frames([1.0]), ["missing"])

    def test_non_numeric_signal_rejected(self):
        with pytest.raises(KeyError, match="label"):
            frames_to_trace(frames([1.0]), ["label"])


class TestCheckTrace:
    def test_satisfied_property(self):
        verdicts = check_trace(frames([1.0, 2.0, 3.0]), {"slow": "G (speed <= 5)"})
        assert len(verdicts) == 1
        assert verdicts[0].satisfied
        assert verdicts[0].robustness == pytest.approx(2.0)

    def test_violated_property(self):
        verdicts = check_trace(frames([1.0, 9.0]), {"slow": "G (speed <= 5)"})
        assert not verdicts[0].satisfied
        assert verdicts[0].robustness == pytest.approx(-4.0)

    def test_multiple_properties_in_order(self):
        verdicts = check_trace(
            frames([1.0, 2.0]),
            {"a": "G (speed <= 5)", "b": "F (speed >= 2)"},
        )
        assert [v.name for v in verdicts] == ["a", "b"]

    def test_end_to_end_with_real_run(self):
        from repro.env import TraceRecorder
        from repro.experiments import build_controller
        from repro.sim import ScenarioType, build_scenario

        controller = build_controller(build_scenario(ScenarioType.NOMINAL, 0))
        recorder = TraceRecorder.attach(controller)
        controller.run()
        verdicts = check_trace(
            recorder.frames,
            {
                "never catastrophic": "G (min_separation >= 0.1)",
                "eventually crosses": "F (ego_s >= 70)",
            },
        )
        assert all(v.satisfied for v in verdicts)


class TestSummarize:
    def test_summary_counts(self):
        verdicts = [
            PropertyVerdict("ok", "G (x >= 0)", 1.0),
            PropertyVerdict("bad", "G (x >= 9)", -2.0),
        ]
        text = summarize(verdicts)
        assert "1/2 properties satisfied" in text
        assert "VIOLATED" in text and "SAT" in text

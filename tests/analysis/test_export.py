"""Tests for campaign-outcome export/import."""

import csv

import pytest

from repro.analysis.export import FIELDS, load_jsonl, to_csv, to_jsonl
from repro.experiments.campaign import RunOutcome
from repro.sim import ScenarioType


def outcome(seed=0, **overrides):
    base = dict(
        scenario="nominal",
        seed=seed,
        monitor_flagged=True,
        safety_flag_count=2,
        collision=False,
        clearance_time=8.5,
        gridlocked=False,
        timed_out=False,
        recovery_activations=1,
        faults_injected=0,
        comfort_violations=3,
        performance_flags=0,
        iterations=90,
        wall_time_s=0.2,
    )
    base.update(overrides)
    return RunOutcome(**base)


class TestExport:
    def test_csv_round_trippable_columns(self, tmp_path):
        path = tmp_path / "out.csv"
        rows = to_csv([outcome(0), outcome(1, clearance_time=None)], path)
        assert rows == 2
        with path.open() as handle:
            reader = csv.DictReader(handle)
            assert reader.fieldnames == FIELDS
            records = list(reader)
        assert records[0]["scenario"] == "nominal"
        assert records[1]["clearance_time"] == ""

    def test_jsonl_round_trip(self, tmp_path):
        path = tmp_path / "out.jsonl"
        original = [outcome(0), outcome(1, collision=True, clearance_time=None)]
        assert to_jsonl(original, path) == 2
        restored = load_jsonl(path)
        assert restored == original

    def test_dict_results_flattened(self, tmp_path):
        results = {
            ScenarioType.NOMINAL: [outcome(0)],
            ScenarioType.CONGESTED: [outcome(1, scenario="congested")],
        }
        path = tmp_path / "suite.jsonl"
        assert to_jsonl(results, path) == 2
        scenarios = {o.scenario for o in load_jsonl(path)}
        assert scenarios == {"nominal", "congested"}

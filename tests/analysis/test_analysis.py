"""Tests for statistics, aggregation and rendering."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import (
    MeanStd,
    Rate,
    aggregate_scenario,
    mean,
    overall_average,
    render_bar_chart,
    render_table,
    sample_std,
)
from repro.experiments.campaign import RunOutcome


def outcome(
    scenario="nominal",
    seed=0,
    flagged=False,
    flags=0,
    collision=False,
    clearance=8.0,
    gridlocked=False,
):
    return RunOutcome(
        scenario=scenario,
        seed=seed,
        monitor_flagged=flagged,
        safety_flag_count=flags,
        collision=collision,
        clearance_time=clearance,
        gridlocked=gridlocked,
        timed_out=gridlocked,
        recovery_activations=2 if flagged else 0,
        faults_injected=0,
        comfort_violations=1,
        performance_flags=0,
        iterations=100,
        wall_time_s=0.1,
    )


class TestRate:
    def test_rendering_matches_paper_style(self):
        assert str(Rate(13, 15)) == "86.7% (13/15)"

    def test_zero_total(self):
        assert Rate(0, 0).fraction == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Rate(5, 3)
        with pytest.raises(ValueError):
            Rate(-1, 3)


class TestMeanStd:
    def test_of_empty_is_none(self):
        assert MeanStd.of([]) is None

    def test_single_sample_zero_std(self):
        summary = MeanStd.of([4.0])
        assert summary.mean == 4.0
        assert summary.std == 0.0

    def test_known_values(self):
        summary = MeanStd.of([2.0, 4.0, 6.0])
        assert summary.mean == pytest.approx(4.0)
        assert summary.std == pytest.approx(2.0)

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False), min_size=2))
    def test_std_non_negative(self, values):
        assert sample_std(values) >= 0.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])


class TestAggregation:
    def test_rates_and_clearance(self):
        outcomes = [
            outcome(flagged=True, flags=3, collision=True, clearance=10.0),
            outcome(seed=1, clearance=8.0),
            outcome(seed=2, clearance=None, gridlocked=True),
        ]
        agg = aggregate_scenario("nominal", outcomes)
        assert agg.monitor_flag_rate.count == 1
        assert agg.collision_rate.count == 1
        assert agg.gridlock_rate.count == 1
        assert agg.clearance.n == 2  # gridlocked run contributes no sample
        assert agg.mean_safety_flags == pytest.approx(1.0)

    def test_empty_outcomes_rejected(self):
        with pytest.raises(ValueError):
            aggregate_scenario("x", [])

    def test_overall_average(self):
        a = aggregate_scenario("a", [outcome(flagged=True)])
        b = aggregate_scenario("b", [outcome()])
        flag, collision = overall_average([a, b])
        assert flag == pytest.approx(50.0)
        assert collision == 0.0

    def test_overall_average_empty_rejected(self):
        with pytest.raises(ValueError):
            overall_average([])


class TestRendering:
    def test_table_alignment_and_content(self):
        text = render_table(
            headers=["name", "value"],
            rows=[["alpha", "1"], ["b", "22"]],
            title="Demo",
        )
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "alpha" in text and "22" in text
        # All data rows share the same width.
        widths = {len(line) for line in lines[2:]}
        assert len(widths) == 1

    def test_table_row_arity_checked(self):
        with pytest.raises(ValueError):
            render_table(headers=["a", "b"], rows=[["only one"]])

    def test_bar_chart_scales_to_peak(self):
        text = render_bar_chart(["short", "long"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_bar_chart_errors_rendered(self):
        text = render_bar_chart(["a"], [3.0], errors=[0.5], unit=" s")
        assert "3.0 s ± 0.5" in text

    def test_bar_chart_zero_values(self):
        text = render_bar_chart(["a"], [0.0])
        assert "#" not in text

    def test_bar_chart_validation(self):
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            render_bar_chart(["a"], [1.0], errors=[1.0, 2.0])

"""Tests for the ``python -m repro.obs`` CLI: summarize, tail, diff, profile."""

import json

from repro.core import OrchestrationController, RoleKind, RoleResult, Verdict
from repro.obs import cli as cli_module
from repro.obs.cli import main, summarize_path
from repro.obs.profile import PhaseProfiler, unit_profile_path, write_profile
from repro.obs.trace import TraceWriter, trace_controller
from tests.conftest import ScriptedRole, StubEnvironment, constant_generator


def _write_trace(tmp_path, name="run-a", steps=3, fail=True):
    results = (
        [RoleResult(verdict=Verdict.FAIL, narrative="x"), RoleResult(verdict=Verdict.PASS)]
        if fail
        else [RoleResult(verdict=Verdict.PASS)]
    )
    monitor = ScriptedRole(results, name="Monitor", kind=RoleKind.SAFETY_MONITOR)
    controller = OrchestrationController(
        [constant_generator("go"), monitor], StubEnvironment(steps=steps)
    )
    path = tmp_path / f"{name}.trace.jsonl"
    recorder = trace_controller(controller, path, trace_id=name)
    result = controller.run()
    recorder.finalize(result.metrics)
    return path, result


class TestSummarize:
    def test_consistent_trace_exits_zero(self, tmp_path, capsys):
        path, result = _write_trace(tmp_path)
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "runs        : 1" in out
        assert f"iterations  : {result.iterations}" in out
        assert "1/1 traces match" in out

    def test_json_output(self, tmp_path, capsys):
        path, result = _write_trace(tmp_path)
        assert main(["summarize", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counts"]["iterations_completed"] == result.iterations
        assert data["mismatches"] == []

    def test_no_timing_omits_latency(self, tmp_path, capsys):
        path, _ = _write_trace(tmp_path)
        main(["summarize", str(path), "--no-timing"])
        assert "latency" not in capsys.readouterr().out

    def test_directory_aggregates(self, tmp_path, capsys):
        _, a = _write_trace(tmp_path, name="run-a")
        _, b = _write_trace(tmp_path, name="run-b")
        assert main(["summarize", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "runs        : 2" in out
        assert f"iterations  : {a.iterations + b.iterations}" in out

    def test_tampered_summary_fails(self, tmp_path, capsys):
        # A footer claiming different counts than the events support must
        # be flagged: the trace is the evidence, not the summary.
        writer = TraceWriter(tmp_path / "bad.trace.jsonl")
        writer.write(
            {"kind": "trace_header", "schema": 1, "trace_kind": "run", "trace_id": "bad", "meta": {}}
        )
        writer.write(
            {"kind": "event", "seq": 1, "event": "iteration_finished", "iteration": 0, "time": 0.1, "role": None, "payload": {}}
        )
        writer.write(
            {
                "kind": "trace_footer",
                "schema": 1,
                "trace_id": "bad",
                "events": 1,
                "spans": 0,
                "metrics_summary": {
                    "iterations_completed": 99,
                    "violation_counts": {},
                    "fault_count": 0,
                    "recovery_activations": 0,
                },
                "telemetry": None,
            }
        )
        writer.close()
        assert main(["summarize", str(writer.path)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_summarize_path_latency_from_spans(self, tmp_path):
        path, result = _write_trace(tmp_path)
        summary = summarize_path(path)
        monitor = summary["latency"]["role_latency_s.Monitor"]
        assert int(monitor["count"]) == result.iterations

    def test_no_dropped_events_no_warning(self, tmp_path, capsys):
        path, _ = _write_trace(tmp_path)
        main(["summarize", str(path)])
        out = capsys.readouterr().out
        assert "dropped" not in out

    def test_dropped_events_surface_as_warning(self, tmp_path, capsys):
        # A bus running with a ring-buffer cap truncates its in-memory
        # log; the footer records how many events fell off, and the
        # audit must surface it (the trace itself is still complete).
        monitor = ScriptedRole(
            [RoleResult(verdict=Verdict.PASS)],
            name="Monitor",
            kind=RoleKind.SAFETY_MONITOR,
        )
        from repro.core import OrchestratorConfig

        controller = OrchestrationController(
            [constant_generator("go"), monitor],
            StubEnvironment(steps=5),
            OrchestratorConfig(event_log_limit=3),
        )
        path = tmp_path / "capped.trace.jsonl"
        recorder = trace_controller(controller, path, trace_id="capped")
        result = controller.run()
        recorder.finalize(result.metrics)
        assert controller.events.dropped_events > 0
        assert main(["summarize", str(path)]) == 0  # dropped != mismatch
        out = capsys.readouterr().out
        assert "WARNING" in out
        assert str(controller.events.dropped_events) in out
        assert main(["summarize", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["dropped_events"] == controller.events.dropped_events


class TestTail:
    def test_tail_shows_events(self, tmp_path, capsys):
        path, _ = _write_trace(tmp_path)
        assert main(["tail", str(path)]) == 0
        out = capsys.readouterr().out
        assert "iteration_started" in out
        assert "run_terminated" in out

    def test_tail_line_limit(self, tmp_path, capsys):
        path, _ = _write_trace(tmp_path)
        main(["tail", str(path), "-n", "2"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2

    def test_tail_event_filter(self, tmp_path, capsys):
        path, result = _write_trace(tmp_path)
        main(["tail", str(path), "--event", "iteration_finished", "-n", "100"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == result.iterations
        assert all("iteration_finished" in line for line in lines)

    def test_tail_no_traces(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path)]) == 1

    def test_tail_resolves_service_job_dir(self, tmp_path, capsys):
        # A service job directory is marked by job.json; its traces live
        # in trace/ and search/ sub-trees.  Tail must find them there —
        # this used to exit 1 with "no run traces found".
        job_dir = tmp_path / "j000001"
        (job_dir / "search").mkdir(parents=True)
        job_dir.joinpath("job.json").write_text(json.dumps({"id": "j000001"}))
        _write_trace(job_dir / "search", name="falsify")
        assert main(["tail", str(job_dir)]) == 0
        out = capsys.readouterr().out
        assert "iteration_started" in out

    def test_tail_follow_picks_up_appended_events(
        self, tmp_path, capsys, monkeypatch
    ):
        path, _ = _write_trace(tmp_path)
        extra = {
            "kind": "event",
            "seq": 999,
            "event": "follow_probe",
            "iteration": 9,
            "time": 1.0,
            "role": None,
            "payload": {},
        }
        cycles = {"n": 0}

        def scripted_sleep(_interval):
            cycles["n"] += 1
            if cycles["n"] == 1:
                with path.open("a") as fh:
                    fh.write(json.dumps(extra) + "\n")
            else:
                raise KeyboardInterrupt  # the user's Ctrl-C

        monkeypatch.setattr(cli_module.time, "sleep", scripted_sleep)
        assert main(["tail", str(path), "--follow"]) == 0
        out = capsys.readouterr().out
        assert "follow_probe" in out

    def test_tail_follow_ignores_partial_lines(
        self, tmp_path, capsys, monkeypatch
    ):
        path, _ = _write_trace(tmp_path)
        cycles = {"n": 0}

        def scripted_sleep(_interval):
            cycles["n"] += 1
            if cycles["n"] == 1:
                with path.open("a") as fh:
                    fh.write('{"kind": "event", "event": "half')  # no newline
            else:
                raise KeyboardInterrupt

        monkeypatch.setattr(cli_module.time, "sleep", scripted_sleep)
        assert main(["tail", str(path), "--follow"]) == 0
        assert "half" not in capsys.readouterr().out


class TestDiff:
    def test_identical_traces(self, tmp_path, capsys):
        a, _ = _write_trace(tmp_path / "a", name="run")
        b, _ = _write_trace(tmp_path / "b", name="run")
        assert main(["diff", str(a), str(b)]) == 0
        assert "counts identical" in capsys.readouterr().out

    def test_differing_traces_exit_two(self, tmp_path, capsys):
        a, _ = _write_trace(tmp_path / "a", name="run", fail=True)
        b, _ = _write_trace(tmp_path / "b", name="run", fail=False)
        assert main(["diff", str(a), str(b), "--no-timing"]) == 2
        out = capsys.readouterr().out
        assert "counts DIFFER" in out
        assert "violations.safety" in out

    def test_help_documents_exit_codes(self, capsys):
        import pytest

        with pytest.raises(SystemExit):
            main(["diff", "--help"])
        out = capsys.readouterr().out
        assert "exit codes" in out
        assert "2  count drift" in out


class TestProfileCommand:
    def _write_profile_dir(self, tmp_path):
        for name, wall in (("u1", 1.0), ("u2", 2.0)):
            profiler = PhaseProfiler()
            profiler.record("orchestrator.decide", wall)
            write_profile(
                unit_profile_path(tmp_path, name), profiler, key=name, kind="unit"
            )
        return tmp_path

    def test_renders_merged_directory(self, tmp_path, capsys):
        profile_dir = self._write_profile_dir(tmp_path)
        assert main(["profile", str(profile_dir)]) == 0
        out = capsys.readouterr().out
        assert "units merged: 2" in out
        assert "orchestrator.decide" in out

    def test_no_timing_counts_only(self, tmp_path, capsys):
        profile_dir = self._write_profile_dir(tmp_path)
        assert main(["profile", str(profile_dir), "--no-timing"]) == 0
        out = capsys.readouterr().out
        assert "orchestrator.decide" in out
        assert "wall s" not in out

    def test_json_output(self, tmp_path, capsys):
        profile_dir = self._write_profile_dir(tmp_path)
        assert main(["profile", str(profile_dir), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["phases"]["orchestrator.decide"]["count"] == 2

"""Tests for the ``python -m repro.obs`` CLI: summarize, tail, diff."""

import json

from repro.core import OrchestrationController, RoleKind, RoleResult, Verdict
from repro.obs.cli import main, summarize_path
from repro.obs.trace import TraceWriter, trace_controller
from tests.conftest import ScriptedRole, StubEnvironment, constant_generator


def _write_trace(tmp_path, name="run-a", steps=3, fail=True):
    results = (
        [RoleResult(verdict=Verdict.FAIL, narrative="x"), RoleResult(verdict=Verdict.PASS)]
        if fail
        else [RoleResult(verdict=Verdict.PASS)]
    )
    monitor = ScriptedRole(results, name="Monitor", kind=RoleKind.SAFETY_MONITOR)
    controller = OrchestrationController(
        [constant_generator("go"), monitor], StubEnvironment(steps=steps)
    )
    path = tmp_path / f"{name}.trace.jsonl"
    recorder = trace_controller(controller, path, trace_id=name)
    result = controller.run()
    recorder.finalize(result.metrics)
    return path, result


class TestSummarize:
    def test_consistent_trace_exits_zero(self, tmp_path, capsys):
        path, result = _write_trace(tmp_path)
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "runs        : 1" in out
        assert f"iterations  : {result.iterations}" in out
        assert "1/1 traces match" in out

    def test_json_output(self, tmp_path, capsys):
        path, result = _write_trace(tmp_path)
        assert main(["summarize", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["counts"]["iterations_completed"] == result.iterations
        assert data["mismatches"] == []

    def test_no_timing_omits_latency(self, tmp_path, capsys):
        path, _ = _write_trace(tmp_path)
        main(["summarize", str(path), "--no-timing"])
        assert "latency" not in capsys.readouterr().out

    def test_directory_aggregates(self, tmp_path, capsys):
        _, a = _write_trace(tmp_path, name="run-a")
        _, b = _write_trace(tmp_path, name="run-b")
        assert main(["summarize", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "runs        : 2" in out
        assert f"iterations  : {a.iterations + b.iterations}" in out

    def test_tampered_summary_fails(self, tmp_path, capsys):
        # A footer claiming different counts than the events support must
        # be flagged: the trace is the evidence, not the summary.
        writer = TraceWriter(tmp_path / "bad.trace.jsonl")
        writer.write(
            {"kind": "trace_header", "schema": 1, "trace_kind": "run", "trace_id": "bad", "meta": {}}
        )
        writer.write(
            {"kind": "event", "seq": 1, "event": "iteration_finished", "iteration": 0, "time": 0.1, "role": None, "payload": {}}
        )
        writer.write(
            {
                "kind": "trace_footer",
                "schema": 1,
                "trace_id": "bad",
                "events": 1,
                "spans": 0,
                "metrics_summary": {
                    "iterations_completed": 99,
                    "violation_counts": {},
                    "fault_count": 0,
                    "recovery_activations": 0,
                },
                "telemetry": None,
            }
        )
        writer.close()
        assert main(["summarize", str(writer.path)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_summarize_path_latency_from_spans(self, tmp_path):
        path, result = _write_trace(tmp_path)
        summary = summarize_path(path)
        monitor = summary["latency"]["role_latency_s.Monitor"]
        assert int(monitor["count"]) == result.iterations


class TestTail:
    def test_tail_shows_events(self, tmp_path, capsys):
        path, _ = _write_trace(tmp_path)
        assert main(["tail", str(path)]) == 0
        out = capsys.readouterr().out
        assert "iteration_started" in out
        assert "run_terminated" in out

    def test_tail_line_limit(self, tmp_path, capsys):
        path, _ = _write_trace(tmp_path)
        main(["tail", str(path), "-n", "2"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2

    def test_tail_event_filter(self, tmp_path, capsys):
        path, result = _write_trace(tmp_path)
        main(["tail", str(path), "--event", "iteration_finished", "-n", "100"])
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == result.iterations
        assert all("iteration_finished" in line for line in lines)

    def test_tail_no_traces(self, tmp_path, capsys):
        assert main(["tail", str(tmp_path)]) == 1


class TestDiff:
    def test_identical_traces(self, tmp_path, capsys):
        a, _ = _write_trace(tmp_path / "a", name="run")
        b, _ = _write_trace(tmp_path / "b", name="run")
        assert main(["diff", str(a), str(b)]) == 0
        assert "counts identical" in capsys.readouterr().out

    def test_differing_traces_exit_two(self, tmp_path, capsys):
        a, _ = _write_trace(tmp_path / "a", name="run", fail=True)
        b, _ = _write_trace(tmp_path / "b", name="run", fail=False)
        assert main(["diff", str(a), str(b), "--no-timing"]) == 2
        out = capsys.readouterr().out
        assert "counts DIFFER" in out
        assert "violations.safety" in out

"""Resilience events through the trace pipeline and the obs CLI.

A degraded run (generator outage + breaker) must leave its full
degrade/recover sequence in the JSONL trace, stay self-consistent under
``verify_trace``, and surface the breaker entry/exit counts in
``python -m repro.obs summarize`` output.
"""

from __future__ import annotations

import pytest

from repro.experiments.campaign import CampaignOptions, run_once
from repro.experiments.fault_matrix import _run
from repro.obs.cli import main, summarize_path
from repro.obs.trace import load_trace, verify_trace
from repro.sim import ScenarioType

CRASH_WINDOW = (20, 45)


@pytest.fixture(scope="module")
def degraded_trace(tmp_path_factory):
    """One traced campaign run with a forced generator outage + breaker."""
    path = tmp_path_factory.mktemp("trace") / "degraded.trace.jsonl"
    outcome = run_once(
        ScenarioType.NOMINAL,
        0,
        CampaignOptions(breaker=True, crash_window=CRASH_WINDOW),
        trace=path,
        trace_id="nominal:0:breaker",
    )
    return path, outcome


class TestDegradedTrace:
    def test_outcome_records_the_degrade_cycle(self, degraded_trace):
        _, outcome = degraded_trace
        assert outcome.degraded_entered >= 1
        assert outcome.degraded_exited >= 1
        assert not outcome.collision
        assert outcome.cleared

    def test_trace_carries_resilience_events(self, degraded_trace):
        path, outcome = degraded_trace
        trace = load_trace(path)
        names = [e.get("event") for e in trace.events]
        assert names.count("degraded_mode_entered") == outcome.degraded_entered
        assert names.count("degraded_mode_exited") == outcome.degraded_exited
        assert "role_skipped" in names  # fallback iterations
        # Degrade before recover, in event order.
        assert names.index("degraded_mode_entered") < names.index(
            "degraded_mode_exited"
        )

    def test_degraded_trace_is_self_consistent(self, degraded_trace):
        path, _ = degraded_trace
        ok, problems = verify_trace(load_trace(path))
        assert ok, problems

    def test_summarize_reports_resilience_line(self, degraded_trace, capsys):
        path, outcome = degraded_trace
        assert main(["summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "resilience  :" in out
        assert f"degraded_entered={outcome.degraded_entered}" in out
        assert f"degraded_exited={outcome.degraded_exited}" in out
        assert "1/1 traces match" in out

    def test_summarize_json_counts_match_outcome(self, degraded_trace):
        path, outcome = degraded_trace
        summary = summarize_path(path)
        events = summary["counts"]["events"]
        assert events["degraded_mode_entered"] == outcome.degraded_entered
        assert events["degraded_mode_exited"] == outcome.degraded_exited
        assert summary["mismatches"] == []


class TestFaultMatrixBreakerTrace:
    def test_breaker_counts_surface_in_summarize(self, tmp_path, capsys):
        # One fault-matrix cell with the breaker armed against a forced
        # generator outage, recorded and then audited through the CLI.
        path = tmp_path / "cell.trace.jsonl"
        cell = _run(
            ScenarioType.NOMINAL,
            0,
            None,
            trace=path,
            trace_id="nominal:0:none:res",
            resilience={"breaker": True, "crash_window": list(CRASH_WINDOW)},
        )
        assert cell["degraded"] >= 1
        assert not cell["collision"]
        assert main(["summarize", str(path), "--no-timing"]) == 0
        out = capsys.readouterr().out
        assert f"degraded_entered={cell['degraded']}" in out
        assert "degraded_exited=" in out
        assert "retries=" in out

    def test_clean_run_has_no_resilience_line(self, tmp_path, capsys):
        path = tmp_path / "clean.trace.jsonl"
        _run(ScenarioType.NOMINAL, 0, None, trace=path, trace_id="nominal:0:none")
        assert main(["summarize", str(path), "--no-timing"]) == 0
        assert "resilience  :" not in capsys.readouterr().out

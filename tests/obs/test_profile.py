"""Tests for the phase profiler: attribution, merging, determinism."""

import json

import pytest

from repro.core import OrchestrationController
from repro.obs.profile import (
    MERGED_PROFILE_NAME,
    PROFILE_SCHEMA_VERSION,
    PhaseProfiler,
    capture_hotspots,
    load_profile,
    merge_profile_dir,
    unit_profile_path,
    write_profile,
)
from tests.conftest import StubEnvironment, constant_generator


class TestPhaseProfiler:
    def test_phase_context_accumulates(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("a"):
                pass
        stat = profiler.stat("a")
        assert stat.count == 3
        assert stat.wall_s >= 0.0
        assert stat.hist.count == 3

    def test_record_explicit(self):
        profiler = PhaseProfiler()
        profiler.record("x", 0.5, 0.25)
        profiler.record("x", 0.5, 0.25)
        assert profiler.stat("x").count == 2
        assert profiler.stat("x").wall_s == pytest.approx(1.0)
        assert profiler.stat("x").cpu_s == pytest.approx(0.5)

    def test_merge_and_snapshot_round_trip(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        a.record("p", 1.0)
        a.record("q", 2.0)
        b.record("p", 3.0)
        a.merge(b)
        assert a.stat("p").count == 2
        assert a.stat("p").wall_s == pytest.approx(4.0)
        restored = PhaseProfiler.from_snapshot(a.snapshot())
        assert restored.count_snapshot() == a.count_snapshot()
        assert restored.stat("p").wall_s == pytest.approx(4.0)
        assert restored.stat("p").hist.count == a.stat("p").hist.count

    def test_snapshot_is_json_serializable_and_sorted(self):
        profiler = PhaseProfiler()
        profiler.record("z", 1.0)
        profiler.record("a", 1.0)
        snapshot = profiler.snapshot()
        json.dumps(snapshot)
        assert list(snapshot) == sorted(snapshot)

    def test_count_snapshot_has_no_timing(self):
        profiler = PhaseProfiler()
        profiler.record("p", 1.0, 0.5)
        counts = profiler.count_snapshot()
        assert counts == {"p": 1}


class TestHotspots:
    def test_capture_returns_result_and_rows(self):
        def work(n):
            return sum(range(n))

        result, rows = capture_hotspots(work, 1000, top_n=5)
        assert result == sum(range(1000))
        assert 0 < len(rows) <= 5
        assert {"function", "calls", "tottime_s", "cumtime_s"} <= set(rows[0])


class TestProfileFiles:
    def test_write_and_load(self, tmp_path):
        profiler = PhaseProfiler()
        profiler.record("p", 1.0)
        path = tmp_path / "unit.profile.json"
        write_profile(path, profiler, key="k", kind="unit")
        data = load_profile(path)
        assert data["schema"] == PROFILE_SCHEMA_VERSION
        assert data["key"] == "k"
        assert data["kind"] == "unit"
        assert data["phases"]["p"]["count"] == 1

    def test_merge_profile_dir(self, tmp_path):
        for i, name in enumerate(("u1", "u2")):
            profiler = PhaseProfiler()
            profiler.record("p", float(i + 1))
            write_profile(
                unit_profile_path(tmp_path, name), profiler, key=name, kind="unit"
            )
        merged_path = merge_profile_dir(tmp_path)
        assert merged_path == tmp_path / MERGED_PROFILE_NAME
        merged = load_profile(merged_path)
        assert merged["units"] == 2
        assert merged["phases"]["p"]["count"] == 2
        assert merged["phases"]["p"]["wall_s"] == pytest.approx(3.0)


class TestOrchestratorIntegration:
    def test_disarmed_by_default(self):
        controller = OrchestrationController(
            [constant_generator("go")], StubEnvironment(steps=2)
        )
        assert controller.profiler is None
        controller.run()

    def test_armed_profiler_attributes_phases(self):
        controller = OrchestrationController(
            [constant_generator("go")], StubEnvironment(steps=3)
        )
        profiler = PhaseProfiler()
        controller.profiler = profiler
        result = controller.run()
        n = result.iterations
        assert profiler.stat("orchestrator.decide").count == n
        assert profiler.stat("sim.observe").count == n
        assert profiler.stat("sim.step").count == n
        assert profiler.stat("role.Generator").count == n
        assert profiler.stat("orchestrator.snapshot").count == 1

    def test_profiling_does_not_change_outcomes(self):
        plain = OrchestrationController(
            [constant_generator("go")], StubEnvironment(steps=4)
        )
        profiled = OrchestrationController(
            [constant_generator("go")], StubEnvironment(steps=4)
        )
        profiled.profiler = PhaseProfiler()
        a, b = plain.run(), profiled.run()
        assert a.iterations == b.iterations
        assert a.reason == b.reason


class TestCampaignDeterminism:
    def test_jobs4_phase_counts_match_serial(self, tmp_path):
        """The merged ``phases`` section is mode-independent by design."""
        from repro.experiments.campaign import execute_suite
        from repro.sim.scenario import ScenarioType

        counts = {}
        for jobs in (1, 4):
            profile_dir = tmp_path / f"jobs{jobs}"
            execute_suite(
                (ScenarioType.NOMINAL,),
                (0, 1),
                jobs=jobs,
                progress=None,
                profile=profile_dir,
            )
            merged = load_profile(profile_dir / MERGED_PROFILE_NAME)
            counts[jobs] = PhaseProfiler.from_snapshot(
                merged["phases"]
            ).count_snapshot()
        assert counts[1] == counts[4]
        assert counts[1]["role.Generator"] > 0

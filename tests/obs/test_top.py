"""The live dashboard: service frames, batch frames, URL resolution."""

import io
import json

import pytest

from repro.experiments.campaign import execute_suite
from repro.obs.top import (
    SERVICE_FILE_NAME,
    TopError,
    TopView,
    resolve_service_url,
    run_top,
    service_snapshot,
)
from repro.sim.scenario import ScenarioType


@pytest.fixture
def served(tmp_path):
    """A tiny live service with one instant job kind."""
    from repro.service import (
        JobStore,
        Scheduler,
        register_job_kind,
        unregister_job_kind,
    )
    from repro.service.api import serve

    def run_ok(spec, ctx):
        return {"ok": True}

    register_job_kind("instant", run_ok)
    store = JobStore(tmp_path / "root")
    scheduler = Scheduler(store, workers=2, max_jobs=4).start()
    server, _thread = serve(scheduler)
    try:
        yield server, scheduler
    finally:
        server.shutdown()
        scheduler.stop(wait=True, timeout=5.0)
        unregister_job_kind("instant")


class TestResolveUrl:
    def test_explicit_url_wins(self, tmp_path):
        assert resolve_service_url("http://x:1/", tmp_path) == "http://x:1"

    def test_reads_service_json_from_root(self, tmp_path):
        (tmp_path / SERVICE_FILE_NAME).write_text(
            json.dumps({"url": "http://127.0.0.1:9999/"})
        )
        assert resolve_service_url(None, tmp_path) == "http://127.0.0.1:9999"

    def test_missing_everything_raises(self, tmp_path):
        with pytest.raises(TopError):
            resolve_service_url(None, None)
        with pytest.raises(TopError):
            resolve_service_url(None, tmp_path)  # no service.json


class TestServiceView:
    def test_snapshot_and_frame(self, served):
        server, scheduler = served
        from repro.service import ServiceClient

        client = ServiceClient(server.url, timeout=10.0)
        record = client.submit("instant", {})
        assert client.wait(record["id"], timeout=10.0)["state"] == "done"

        snapshot = service_snapshot(server.url)
        assert snapshot["stats"]["workers"] == 2
        assert any(j["id"] == record["id"] for j in snapshot["jobs"])

        frame = TopView().render_service(snapshot)
        assert "repro service v" in frame
        assert "slots [" in frame
        assert "done=1" in frame

    def test_run_top_non_tty_blocks(self, served):
        server, _scheduler = served
        out = io.StringIO()  # not a TTY: frames separated by blank lines
        code = run_top(url=server.url, iterations=2, interval_s=0.01, stream=out)
        assert code == 0
        text = out.getvalue()
        assert "\x1b[" not in text
        assert text.count("repro service v") == 2

    def test_unreachable_service_exits_nonzero(self, capsys):
        code = run_top(url="http://127.0.0.1:1", iterations=1, interval_s=0.01,
                       stream=io.StringIO())
        assert code == 1
        assert "top:" in capsys.readouterr().err


class TestBatchView:
    def test_batch_frame_over_traces(self, tmp_path):
        trace = tmp_path / "trace"
        execute_suite(
            (ScenarioType.NOMINAL, ScenarioType.PEDESTRIAN),
            (0,),
            jobs=1,
            progress=None,
            trace=trace,
        )
        frame = TopView().render_batch(trace)
        assert "runs 2" in frame
        assert "nominal" in frame and "pedestrian_crossing" in frame
        assert "rho_min" in frame

    def test_batch_frame_empty_dir(self, tmp_path):
        frame = TopView().render_batch(tmp_path)
        assert "(no run traces found)" in frame

    def test_cli_top_once(self, tmp_path, capsys):
        from repro.obs.cli import main

        trace = tmp_path / "trace"
        execute_suite(
            (ScenarioType.NOMINAL,), (0,), jobs=1, progress=None, trace=trace
        )
        assert main(["top", "--dir", str(trace), "--once"]) == 0
        assert "runs 1" in capsys.readouterr().out

    def test_cli_top_requires_a_source(self, capsys):
        from repro.obs.cli import main

        assert main(["top"]) != 0

"""Tests for the telemetry registry: counters, gauges, log-linear
histograms, merging, pickling and JSON round trips."""

import pickle

import pytest

from repro.obs.telemetry import SUBBUCKETS, Counter, Gauge, Histogram, TelemetryRegistry


class TestCounter:
    def test_inc(self):
        c = Counter()
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_merge_sums(self):
        a, b = Counter(3), Counter(4)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_set_and_add(self):
        g = Gauge()
        g.set(2.5)
        g.add(0.5)
        assert g.value == 3.0

    def test_merge_sums(self):
        a, b = Gauge(1.0), Gauge(2.0)
        a.merge(b)
        assert a.value == 3.0


class TestHistogram:
    def test_exact_stats(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0, 4.0):
            h.record(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.min == 1.0 and h.max == 4.0

    def test_percentile_bounded_error(self):
        h = Histogram()
        samples = [0.001 * i for i in range(1, 1001)]  # 1 ms .. 1 s
        for v in samples:
            h.record(v)
        # Log-linear buckets bound the relative error at ~1/SUBBUCKETS.
        assert h.percentile(50.0) == pytest.approx(0.5, rel=2.0 / SUBBUCKETS)
        assert h.percentile(99.0) == pytest.approx(0.99, rel=2.0 / SUBBUCKETS)

    def test_percentile_clamped_to_envelope(self):
        h = Histogram()
        h.record(3.0)
        assert h.percentile(0.0) == 3.0
        assert h.percentile(100.0) == 3.0

    def test_zeros_tracked(self):
        h = Histogram()
        h.record(0.0)
        h.record(0.0)
        h.record(8.0)
        assert h.zeros == 2
        assert h.percentile(50.0) == 0.0
        assert h.percentile(100.0) == 8.0

    def test_rejects_bad_samples(self):
        with pytest.raises(ValueError):
            Histogram().record(-1.0)
        with pytest.raises(ValueError):
            Histogram().record(float("nan"))

    def test_merge(self):
        a, b = Histogram(), Histogram()
        for v in (0.1, 0.2):
            a.record(v)
        for v in (0.3, 0.4):
            b.record(v)
        a.merge(b)
        assert a.count == 4
        assert a.min == 0.1 and a.max == 0.4
        assert a.mean == pytest.approx(0.25)

    def test_summary_keys(self):
        h = Histogram()
        h.record(1.0)
        assert set(h.summary()) == {"count", "mean", "p50", "p90", "p99", "min", "max"}

    def test_empty_percentile(self):
        assert Histogram().percentile(99.0) == 0.0


def _sample_registry() -> TelemetryRegistry:
    r = TelemetryRegistry()
    r.counter("events.role_executed").inc(12)
    r.gauge("iterations").set(4)
    for v in (0.001, 0.002, 0.004):
        r.histogram("role_latency_s.Monitor").record(v)
    return r


class TestRegistry:
    def test_create_on_first_use(self):
        r = TelemetryRegistry()
        assert r.counter("x") is r.counter("x")
        assert r.counter("x").value == 0

    def test_merge_registries(self):
        a, b = _sample_registry(), _sample_registry()
        a.merge(b)
        assert a.counter("events.role_executed").value == 24
        assert a.histogram("role_latency_s.Monitor").count == 6

    def test_merged_classmethod(self):
        merged = TelemetryRegistry.merged([_sample_registry(), _sample_registry()])
        assert merged.counter("events.role_executed").value == 24

    def test_snapshot_round_trip(self):
        r = _sample_registry()
        rebuilt = TelemetryRegistry.from_snapshot(r.snapshot())
        assert rebuilt.snapshot() == r.snapshot()
        assert rebuilt.histogram("role_latency_s.Monitor").percentile(
            50.0
        ) == r.histogram("role_latency_s.Monitor").percentile(50.0)

    def test_picklable(self):
        # Workers ship registries back to the parent across the
        # ProcessPoolExecutor boundary.
        r = _sample_registry()
        clone = pickle.loads(pickle.dumps(r))
        assert clone.snapshot() == r.snapshot()

    def test_render_lines_timing_toggle(self):
        r = _sample_registry()
        with_timing = "\n".join(r.render_lines())
        without = "\n".join(r.render_lines(timing=False))
        assert "histograms" in with_timing
        assert "histograms" not in without
        assert "events.role_executed" in without

    def test_render_empty(self):
        assert TelemetryRegistry().render_lines() == ["no instruments recorded"]

"""The cross-run trace index: rows, refresh, queries, verification."""

import json
import os

import pytest

from repro.experiments.campaign import execute_suite
from repro.obs.index import (
    DETERMINISTIC_FIELDS,
    INDEX_FILE_NAME,
    filter_rows,
    format_rows,
    group_rows,
    index_rows,
    parse_where,
    refresh_index,
    sort_rows,
    verify_index,
)
from repro.sim.scenario import ScenarioType


@pytest.fixture(scope="module")
def traced_campaign(tmp_path_factory):
    """One small traced campaign, shared by the read-only tests."""
    trace = tmp_path_factory.mktemp("campaign") / "trace"
    execute_suite(
        (ScenarioType.NOMINAL, ScenarioType.PEDESTRIAN),
        (0, 1),
        jobs=1,
        progress=None,
        trace=trace,
    )
    return trace


def deterministic(rows):
    return [{c: row.get(c) for c in DETERMINISTIC_FIELDS} for row in rows]


class TestRows:
    def test_one_row_per_run_with_recomputed_counts(self, traced_campaign):
        rows = index_rows(refresh_index(traced_campaign, write=False))
        assert len(rows) == 4
        assert {row["scenario"] for row in rows} == {
            "nominal", "pedestrian_crossing"
        }
        assert {row["seed"] for row in rows} == {0, 1}
        for row in rows:
            assert row["iterations"] > 0
            assert isinstance(row["rho"], float)
            assert row["violations"] == sum(row["violations_by_role"].values())

    def test_rho_sourced_from_footer_extras(self, traced_campaign):
        rows = index_rows(refresh_index(traced_campaign, write=False))
        bad = [r for r in rows if r["scenario"] == "pedestrian_crossing" and r["seed"] == 0]
        assert bad and bad[0]["rho"] < 0  # the pinned collision scenario

    def test_rows_deterministic_across_jobs(self, tmp_path):
        outputs = {}
        for jobs in (1, 4):
            trace = tmp_path / f"jobs{jobs}" / "trace"
            execute_suite(
                (ScenarioType.NOMINAL, ScenarioType.PEDESTRIAN),
                (0, 1),
                jobs=jobs,
                progress=None,
                trace=trace,
            )
            rows = deterministic(index_rows(refresh_index(trace)))
            outputs[jobs] = format_rows(rows, "json")
        assert outputs[1] == outputs[4]  # byte-identical, the PR contract


class TestRefresh:
    def test_incremental_refresh_skips_unchanged_files(self, traced_campaign):
        first = refresh_index(traced_campaign)
        assert first["stats"]["parsed"] > 0
        second = refresh_index(traced_campaign)
        assert second["stats"]["parsed"] == 0
        assert index_rows(first) == index_rows(second)

    def test_changed_file_is_reparsed(self, tmp_path):
        trace = tmp_path / "trace"
        execute_suite(
            (ScenarioType.NOMINAL,), (0,), jobs=1, progress=None, trace=trace
        )
        refresh_index(trace)
        (target,) = sorted((trace / "units").glob("*.trace.jsonl"))
        target.write_bytes(target.read_bytes() + b"\n")
        os.utime(target, (0, 0))  # force a (size, mtime) change either way
        again = refresh_index(trace)
        assert again["stats"]["parsed"] == 1

    def test_corrupt_previous_index_triggers_full_rebuild(self, tmp_path):
        trace = tmp_path / "trace"
        execute_suite(
            (ScenarioType.NOMINAL,), (0,), jobs=1, progress=None, trace=trace
        )
        index_path = trace / INDEX_FILE_NAME
        index_path.write_text("not json at all")
        rebuilt = refresh_index(trace)
        assert rebuilt["stats"]["parsed"] > 0
        assert index_rows(rebuilt)


class TestQuery:
    def test_where_equality_and_comparison(self, traced_campaign):
        rows = index_rows(refresh_index(traced_campaign, write=False))
        nominal = filter_rows(rows, [parse_where("scenario=nominal")])
        assert {r["scenario"] for r in nominal} == {"nominal"}
        falsified = filter_rows(rows, [parse_where("rho<0")])
        assert all(r["rho"] < 0 for r in falsified)
        assert falsified  # the pedestrian collision run
        both = filter_rows(
            rows, [parse_where("scenario=pedestrian_crossing"), parse_where("seed>=1")]
        )
        assert [(r["scenario"], r["seed"]) for r in both] == [
            ("pedestrian_crossing", 1)
        ]

    def test_where_alias_and_bad_expression(self, traced_campaign):
        rows = index_rows(refresh_index(traced_campaign, write=False))
        assert filter_rows(rows, [parse_where("robustness<0")]) == filter_rows(
            rows, [parse_where("rho<0")]
        )
        with pytest.raises(ValueError, match="bad --where"):
            parse_where("just-not-a-clause")

    def test_group_by_scenario(self, traced_campaign):
        rows = index_rows(refresh_index(traced_campaign, write=False))
        groups = group_rows(rows, "scenario")
        by_name = {g["scenario"]: g for g in groups}
        assert by_name["nominal"]["runs"] == 2
        assert by_name["pedestrian_crossing"]["violations"] > 0
        assert by_name["pedestrian_crossing"]["rho_min"] < 0
        total = sum(g["runs"] for g in groups)
        assert total == len(rows)

    def test_sort_rows(self, traced_campaign):
        rows = index_rows(refresh_index(traced_campaign, write=False))
        ascending = [r["rho"] for r in sort_rows(list(rows), "rho")]
        assert ascending == sorted(ascending)
        descending = [r["rho"] for r in sort_rows(list(rows), "-rho")]
        assert descending == sorted(descending, reverse=True)

    def test_formats(self, traced_campaign):
        rows = deterministic(index_rows(refresh_index(traced_campaign, write=False)))
        table = format_rows(rows, "table")
        assert "scenario" in table.splitlines()[0]
        parsed = json.loads(format_rows(rows, "json"))
        assert len(parsed) == len(rows)
        csv_text = format_rows(rows, "csv")
        assert csv_text.splitlines()[0].startswith("job,")
        assert len(csv_text.splitlines()) == len(rows) + 1
        with pytest.raises(ValueError, match="unknown format"):
            format_rows(rows, "yaml")


class TestVerify:
    def test_clean_index_verifies(self, tmp_path):
        trace = tmp_path / "trace"
        execute_suite(
            (ScenarioType.NOMINAL,), (0,), jobs=1, progress=None, trace=trace
        )
        refresh_index(trace)
        ok, problems = verify_index(trace)
        assert ok, problems

    def test_tampered_index_row_fails(self, tmp_path):
        trace = tmp_path / "trace"
        execute_suite(
            (ScenarioType.NOMINAL,), (0,), jobs=1, progress=None, trace=trace
        )
        refresh_index(trace)
        index_path = trace / INDEX_FILE_NAME
        data = json.loads(index_path.read_text())
        for entry in data["files"].values():
            if entry.get("kind") == "run":
                entry["row"]["violations"] = 999
        index_path.write_text(json.dumps(data))
        ok, problems = verify_index(trace)
        assert not ok
        assert any("diverges" in p for p in problems)

    def test_stale_index_fails_on_new_files(self, tmp_path):
        trace = tmp_path / "trace"
        execute_suite(
            (ScenarioType.NOMINAL,), (0,), jobs=1, progress=None, trace=trace
        )
        refresh_index(trace)
        execute_suite(
            (ScenarioType.NOMINAL,), (0, 1), jobs=1, progress=None, trace=trace
        )
        ok, problems = verify_index(trace)
        assert not ok
        assert any("not indexed" in p for p in problems)

    def test_missing_index_fails(self, tmp_path):
        trace = tmp_path / "trace"
        execute_suite(
            (ScenarioType.NOMINAL,), (0,), jobs=1, progress=None, trace=trace
        )
        ok, problems = verify_index(trace)
        assert not ok and "no index" in problems[0]


class TestCli:
    def test_query_and_verify_exit_codes(self, tmp_path, capsys):
        from repro.obs.cli import main

        trace = tmp_path / "trace"
        execute_suite(
            (ScenarioType.NOMINAL,), (0,), jobs=1, progress=None, trace=trace
        )
        assert main(["query", str(trace), "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows and rows[0]["scenario"] == "nominal"
        assert "wall_s" not in rows[0]  # timing excluded by default
        assert main(["query", str(trace), "--verify"]) == 0
        capsys.readouterr()
        index_path = trace / INDEX_FILE_NAME
        data = json.loads(index_path.read_text())
        for entry in data["files"].values():
            if entry.get("kind") == "run":
                entry["row"]["iterations"] += 1
        index_path.write_text(json.dumps(data))
        assert main(["query", str(trace), "--verify"]) == 2

    def test_query_timing_flag_adds_columns(self, tmp_path, capsys):
        from repro.obs.cli import main

        trace = tmp_path / "trace"
        execute_suite(
            (ScenarioType.NOMINAL,), (0,), jobs=1, progress=None, trace=trace
        )
        assert main(["query", str(trace), "--timing", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert "wall_s" in rows[0] and rows[0]["wall_s"] > 0

"""Tests for span-based tracing: recorder round trips, self-certification,
engine traces, manifests, and the serial == parallel guarantee."""

import json

from repro.core import (
    OrchestrationController,
    RoleKind,
    RoleResult,
    Verdict,
)
from repro.exec import CampaignEngine, EnginePolicy, WorkUnit
from repro.obs.trace import (
    ENGINE_TRACE_NAME,
    MANIFEST_NAME,
    TRACE_SCHEMA_VERSION,
    load_trace,
    load_run_traces,
    recompute_counts,
    safe_trace_name,
    trace_controller,
    unit_trace_path,
    verify_trace,
)
from tests.conftest import ScriptedRole, StubEnvironment, constant_generator


def _build_controller(steps=3):
    monitor = ScriptedRole(
        [
            RoleResult(verdict=Verdict.FAIL, narrative="too close"),
            RoleResult(verdict=Verdict.PASS),
        ],
        name="Monitor",
        kind=RoleKind.SAFETY_MONITOR,
    )
    recovery = ScriptedRole(
        [RoleResult(verdict=Verdict.WARNING, data={"action": "brake"})],
        name="Recovery",
        kind=RoleKind.RECOVERY_PLANNER,
    )
    return OrchestrationController(
        [constant_generator("go"), monitor, recovery], StubEnvironment(steps=steps)
    )


def _traced_run(tmp_path, name="run-a", steps=3):
    controller = _build_controller(steps=steps)
    path = tmp_path / f"{name}.trace.jsonl"
    recorder = trace_controller(controller, path, trace_id=name)
    result = controller.run()
    recorder.finalize(result.metrics)
    return controller, result, path


class TestTraceRecorder:
    def test_header_and_footer(self, tmp_path):
        _, result, path = _traced_run(tmp_path)
        trace = load_trace(path)
        assert trace.header["schema"] == TRACE_SCHEMA_VERSION
        assert trace.header["trace_kind"] == "run"
        assert trace.trace_id == "run-a"
        assert trace.footer["metrics_summary"]["iterations_completed"] == result.iterations
        assert trace.corrupt_lines == 0

    def test_every_bus_event_recorded(self, tmp_path):
        controller, _, path = _traced_run(tmp_path)
        trace = load_trace(path)
        assert len(trace.events) == len(controller.events.log)
        assert [e["event"] for e in trace.events] == [
            e.kind.value for e in controller.events.log
        ]

    def test_self_certifying(self, tmp_path):
        _, result, path = _traced_run(tmp_path)
        trace = load_trace(path)
        ok, mismatches = verify_trace(trace)
        assert ok and not mismatches
        counts = recompute_counts(trace)
        summary = result.metrics.summary()
        assert counts["iterations_completed"] == summary["iterations_completed"]
        assert counts["violation_counts"] == dict(summary["violation_counts"])
        assert counts["fault_count"] == summary["fault_count"]
        assert counts["recovery_activations"] == summary["recovery_activations"]

    def test_span_nesting(self, tmp_path):
        _, result, path = _traced_run(tmp_path)
        trace = load_trace(path)
        runs = [s for s in trace.spans if s["span_kind"] == "run"]
        iterations = [s for s in trace.spans if s["span_kind"] == "iteration"]
        roles = [s for s in trace.spans if s["span_kind"] == "role"]
        assert len(runs) == 1
        assert len(iterations) == result.iterations
        # 3 roles per iteration, all executed.
        assert len(roles) == 3 * result.iterations
        run_id = runs[0]["span_id"]
        assert all(s["parent_id"] == run_id for s in iterations)
        iteration_ids = {s["span_id"] for s in iterations}
        assert all(s["parent_id"] in iteration_ids for s in roles)
        assert all(s["duration_s"] >= 0.0 for s in trace.spans)

    def test_role_spans_carry_verdicts(self, tmp_path):
        _, _, path = _traced_run(tmp_path)
        trace = load_trace(path)
        verdicts = {
            s["attrs"]["verdict"]
            for s in trace.spans
            if s["span_kind"] == "role" and s["name"] == "Monitor"
        }
        assert verdicts == {"fail", "pass"}

    def test_finalize_detaches(self, tmp_path):
        controller = _build_controller()
        path = tmp_path / "x.trace.jsonl"
        recorder = trace_controller(controller, path)
        result = controller.run()
        recorder.finalize(result.metrics)
        assert controller.tracer is None
        written = path.read_text()
        # Finalize is idempotent and the bus is unsubscribed: running again
        # appends nothing to the closed trace.
        recorder.finalize(result.metrics)
        controller.run()
        assert path.read_text() == written

    def test_telemetry_counts_events(self, tmp_path):
        controller, result, path = _traced_run(tmp_path)
        telemetry = load_trace(path).telemetry()
        assert telemetry is not None
        assert (
            telemetry.counter("events.role_executed").value == 3 * result.iterations
        )
        assert telemetry.histogram("role_latency_s.Monitor").count == result.iterations
        assert telemetry.counter("violations.safety").value > 0

    def test_zero_cost_when_disabled(self, tmp_path):
        controller = _build_controller()
        assert controller.tracer is None
        controller.run()
        assert list(tmp_path.iterdir()) == []

    def test_corrupt_line_tolerated(self, tmp_path):
        _, _, path = _traced_run(tmp_path)
        with path.open("a") as fh:
            fh.write("{truncated\n")
        trace = load_trace(path)
        assert trace.corrupt_lines == 1
        assert verify_trace(trace)[0]


class TestTraceNames:
    def test_safe_name_sanitized(self):
        name = safe_trace_name("nominal:3:abc/../x")
        assert "/" not in name and ":" not in name
        assert name.endswith(".trace.jsonl")

    def test_distinct_keys_distinct_names(self):
        # Sanitization collapses punctuation; the digest keeps names unique.
        assert safe_trace_name("a:b") != safe_trace_name("a/b")

    def test_unit_trace_path_under_units(self, tmp_path):
        path = unit_trace_path(tmp_path, "nominal:0")
        assert path.parent == tmp_path / "units"


def square(payload):
    return payload * payload


def boom(payload):
    raise ValueError("boom")


class TestEngineTracer:
    def test_engine_trace_and_manifest(self, tmp_path):
        trace_dir = tmp_path / "traces"
        units = [WorkUnit(key=f"sq:{i}", payload=i) for i in range(4)]
        report = CampaignEngine(
            square, EnginePolicy(jobs=1), progress=None, trace=trace_dir
        ).run(units)
        assert report.telemetry is not None
        assert report.telemetry.counter("tasks.ok").value == 4
        engine_trace = load_trace(trace_dir / ENGINE_TRACE_NAME)
        assert engine_trace.trace_kind == "engine"
        tasks = [s for s in engine_trace.spans if s["span_kind"] == "task"]
        assert {s["name"] for s in tasks} == {u.key for u in units}
        assert engine_trace.footer["campaign_summary"]["total"] == 4
        manifest = json.loads((trace_dir / MANIFEST_NAME).read_text())
        assert [e["key"] for e in manifest["traces"]] == [u.key for u in units]
        # square() writes no per-unit run traces.
        assert all(e["file"] is None for e in manifest["traces"])

    def test_task_errors_and_retries_counted(self, tmp_path):
        trace_dir = tmp_path / "traces"
        report = CampaignEngine(
            boom,
            EnginePolicy(jobs=1, max_retries=2, retry_backoff_s=0.0),
            progress=None,
            trace=trace_dir,
        ).run([WorkUnit(key="bad", payload=0)])
        assert report.telemetry.counter("tasks.error").value == 1
        assert report.telemetry.counter("tasks.retries").value == 2
        engine_trace = load_trace(trace_dir / ENGINE_TRACE_NAME)
        retries = [e for e in engine_trace.events if e["event"] == "task_retry"]
        assert len(retries) == 2

    def test_untraced_engine_writes_nothing(self, tmp_path):
        report = CampaignEngine(square, EnginePolicy(jobs=1), progress=None).run(
            [WorkUnit(key="sq:0", payload=2)]
        )
        assert report.telemetry is None
        assert list(tmp_path.iterdir()) == []


class TestDiscovery:
    def test_manifest_order_respected(self, tmp_path):
        for name in ("run-b", "run-a"):
            _traced_run(tmp_path / "units", name=name)
        runs = load_run_traces(tmp_path)
        # Sorted by trace id regardless of discovery order.
        assert [t.trace_id for t in runs] == ["run-a", "run-b"]

    def test_service_job_dir_gathers_all_trace_sources(self, tmp_path):
        # A job directory (marked by job.json) holds traces in trace/,
        # search/ and directly inside it; discovery must find them all.
        from repro.obs.trace import discover_traces

        job_dir = tmp_path / "j000001"
        job_dir.mkdir()
        (job_dir / "job.json").write_text("{}")
        _traced_run(job_dir / "trace" / "units", name="unit-a")
        _traced_run(job_dir / "search", name="eval-b")
        _traced_run(job_dir, name="replay")
        found = discover_traces(job_dir)
        names = sorted(p.name for p in found)
        assert names == [
            "eval-b.trace.jsonl",
            "replay.trace.jsonl",
            "unit-a.trace.jsonl",
        ]
        runs = load_run_traces(job_dir)
        assert [t.trace_id for t in runs] == ["eval-b", "replay", "unit-a"]

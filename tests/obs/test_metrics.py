"""Prometheus exposition validity: names, labels, histograms, snapshots."""

import math

import pytest

from repro.obs.metrics import (
    EXPOSITION_CONTENT_TYPE,
    METRICS_FILE_NAME,
    METRICS_SCHEMA_VERSION,
    escape_label_value,
    load_metrics_json,
    parse_exposition,
    render_exposition,
    sanitize_metric_name,
    split_instrument,
    validate_exposition,
    write_metrics_json,
)
from repro.obs.telemetry import TelemetryRegistry


def registry_with_everything() -> TelemetryRegistry:
    registry = TelemetryRegistry()
    registry.counter("events.iteration_finished").inc(12)
    registry.counter("violations.safety").inc(3)
    registry.counter("service.jobs_done").inc(2)
    registry.counter("worker.pool-1.tasks").inc(7)
    registry.counter('http.requests.GET /v1/jobs/{id}').inc(4)
    registry.gauge("jobs.queue_depth").set(5.0)
    registry.gauge("jobs.state.queued").set(2.0)
    hist = registry.histogram("role_latency_s.SafetyMonitor")
    for value in (0.0, 0.001, 0.02, 0.02, 0.5, 3.0, 3.1, 120.0):
        hist.record(value)
    return registry


class TestNameSanitization:
    def test_illegal_characters_collapse(self):
        assert sanitize_metric_name("role latency (s)") == "role_latency__s_"

    def test_leading_digit_gets_prefixed(self):
        name = sanitize_metric_name("99th_percentile")
        assert name[0] == "_"
        assert validate_exposition(f"{name} 1\n") == []

    def test_split_known_prefixes_become_labels(self):
        assert split_instrument("events.run_started") == (
            "events_total", {"kind": "run_started"}
        )
        assert split_instrument("jobs.state.running") == (
            "service_jobs", {"state": "running"}
        )
        assert split_instrument("worker.w3.tasks") == (
            "worker_tasks_total", {"worker": "w3"}
        )

    def test_split_unknown_name_sanitizes_wholesale(self):
        family, labels = split_instrument("store.append_s")
        assert family == "store_append_s"
        assert labels == {}


class TestLabelEscaping:
    def test_backslash_quote_newline(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_round_trip_through_parser(self):
        registry = TelemetryRegistry()
        registry.counter('events.we"ird\\kind\nx').inc(1)
        text = render_exposition(registry)
        assert validate_exposition(text) == []
        ((name, labels, value),) = parse_exposition(text)
        assert labels["kind"] == 'we"ird\\kind\nx'
        assert value == 1.0


class TestExposition:
    def test_valid_and_round_trips(self):
        registry = registry_with_everything()
        text = render_exposition(registry)
        assert validate_exposition(text) == []
        samples = parse_exposition(text)
        by_name = {}
        for name, labels, value in samples:
            by_name.setdefault(name, []).append((labels, value))
        assert by_name["repro_events_total"] == [
            ({"kind": "iteration_finished"}, 12.0)
        ]
        assert ({"state": "queued"}, 2.0) in by_name["repro_service_jobs"]
        assert by_name["repro_jobs_queue_depth"] == [({}, 5.0)]

    def test_counters_end_in_total(self):
        text = render_exposition(registry_with_everything())
        for line in text.splitlines():
            if line.startswith("# TYPE") and line.endswith(" counter"):
                assert line.split()[2].endswith("_total"), line

    def test_histogram_buckets_cumulative_and_terminated(self):
        registry = registry_with_everything()
        text = render_exposition(registry)
        buckets = [
            (labels["le"], value)
            for name, labels, value in parse_exposition(text)
            if name == "repro_role_latency_seconds_bucket"
        ]
        assert buckets[-1][0] == "+Inf"
        counts = [value for _, value in buckets]
        assert counts == sorted(counts)
        hist = registry.histograms["role_latency_s.SafetyMonitor"]
        assert counts[-1] == hist.count
        # Zeros count toward every bucket (cumulative from the left).
        assert counts[0] >= hist.zeros

    def test_histogram_sum_exact(self):
        registry = registry_with_everything()
        hist = registry.histograms["role_latency_s.SafetyMonitor"]
        samples = parse_exposition(render_exposition(registry))
        (total,) = [
            v for n, _, v in samples if n == "repro_role_latency_seconds_sum"
        ]
        assert total == pytest.approx(hist.total)

    def test_never_emits_infinity_or_nan_tokens(self):
        registry = registry_with_everything()
        registry.gauge("broken.gauge").value = math.inf
        registry.gauge("other.gauge").value = math.nan
        text = render_exposition(registry)
        assert "Infinity" not in text
        assert "NaN" not in text
        assert validate_exposition(text) == []
        samples = dict(
            (n, v) for n, labels, v in parse_exposition(text) if not labels
        )
        # Clamped to zero, and the corruption is counted, not hidden.
        assert samples["repro_broken_gauge"] == 0.0
        assert samples["repro_exposition_nonfinite_total"] == 2.0

    def test_render_is_deterministic(self):
        a = render_exposition(registry_with_everything())
        b = render_exposition(registry_with_everything())
        assert a == b

    def test_extra_labels_attach_everywhere(self):
        text = render_exposition(
            registry_with_everything(), extra_labels={"instance": "s1"}
        )
        for name, labels, _ in parse_exposition(text):
            assert labels.get("instance") == "s1", name

    def test_validator_flags_non_monotone_buckets(self):
        bad = (
            'x_bucket{le="1"} 5\n'
            'x_bucket{le="2"} 3\n'
            'x_bucket{le="+Inf"} 5\n'
            "x_count 5\n"
        )
        assert any("non-monotone" in p for p in validate_exposition(bad))

    def test_validator_flags_missing_inf_bucket(self):
        assert any(
            "+Inf" in p for p in validate_exposition('x_bucket{le="1"} 5\n')
        )

    def test_validator_flags_inf_count_mismatch(self):
        bad = 'x_bucket{le="+Inf"} 4\nx_count 5\n'
        assert any("_count" in p for p in validate_exposition(bad))

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_exposition("}{ not a sample\n")

    def test_content_type_pins_the_format_version(self):
        assert "version=0.0.4" in EXPOSITION_CONTENT_TYPE


class TestMetricsJson:
    def test_round_trip(self, tmp_path):
        registry = registry_with_everything()
        path = write_metrics_json(
            tmp_path / METRICS_FILE_NAME, registry, meta={"job": "j000001"}
        )
        loaded, meta = load_metrics_json(path)
        assert meta["job"] == "j000001"
        assert render_exposition(loaded) == render_exposition(registry)

    def test_no_nonfinite_tokens_in_file(self, tmp_path):
        registry = registry_with_everything()
        registry.gauge("broken").value = math.inf
        path = write_metrics_json(tmp_path / METRICS_FILE_NAME, registry, meta={})
        text = path.read_text()
        assert "Infinity" not in text and "NaN" not in text

    def test_schema_mismatch_rejected(self, tmp_path):
        path = write_metrics_json(
            tmp_path / METRICS_FILE_NAME, TelemetryRegistry(), meta={}
        )
        data = path.read_text().replace(
            f'"schema": {METRICS_SCHEMA_VERSION}', '"schema": 999'
        )
        path.write_text(data)
        with pytest.raises(ValueError, match="schema"):
            load_metrics_json(path)

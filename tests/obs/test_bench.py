"""Tests for the benchmark harness and the regression gate."""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    WORKLOADS,
    bench_file_name,
    compare_bench,
    discover_bench_files,
    regress,
    render_bench,
    run_workload,
    write_bench,
)
from repro.obs.cli import main


def _payload(workload="smoke", runs=2, iterations=100, runs_per_s=4.0):
    """Minimal synthetic BENCH payload exercising the gate's schema."""
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "workload": workload,
        "description": "synthetic",
        "config": {"jobs": 1},
        "provenance": {},
        "counts": {"runs": runs, "iterations": iterations},
        "totals": {
            "wall_time_s": runs / runs_per_s,
            "runs_per_s": runs_per_s,
            "iterations_per_s": iterations / (runs / runs_per_s),
            "busy_time_s": runs / runs_per_s,
            "utilization": 1.0,
            "mode": "serial",
            "jobs": 1,
        },
        "phases": {},
        "engine_phases": {},
        "roles": {},
    }


class TestCompare:
    def test_identical_is_clean(self):
        payload = _payload()
        comparison = compare_bench(payload, payload, tolerance_pct=5.0)
        assert comparison.regressions == []
        assert comparison.errors == []

    def test_slowdown_beyond_tolerance_regresses(self):
        base = _payload(runs_per_s=4.0)
        slow = _payload(runs_per_s=2.0)
        comparison = compare_bench(base, slow, tolerance_pct=10.0)
        assert any("runs_per_s" in r for r in comparison.regressions)

    def test_slowdown_within_tolerance_passes(self):
        base = _payload(runs_per_s=4.0)
        slightly_slow = _payload(runs_per_s=3.9)
        comparison = compare_bench(base, slightly_slow, tolerance_pct=10.0)
        assert comparison.regressions == []

    def test_speedup_never_regresses(self):
        base = _payload(runs_per_s=4.0)
        fast = _payload(runs_per_s=40.0)
        comparison = compare_bench(base, fast, tolerance_pct=10.0)
        assert comparison.regressions == []

    def test_count_mismatch_is_incomparable(self):
        comparison = compare_bench(
            _payload(runs=2), _payload(runs=3), tolerance_pct=10.0
        )
        assert comparison.errors
        assert comparison.regressions == []


class TestRegress:
    def _write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.mkdir(exist_ok=True)
        return write_bench(payload, path)

    def test_identical_inputs_exit_zero(self, tmp_path):
        path = self._write(tmp_path, "a", _payload())
        _, code = regress(path, path, 5.0)
        assert code == 0

    def test_regression_exits_two(self, tmp_path):
        base = self._write(tmp_path, "a", _payload(runs_per_s=4.0))
        curr = self._write(tmp_path, "b", _payload(runs_per_s=1.0))
        _, code = regress(base, curr, 10.0)
        assert code == 2

    def test_nothing_comparable_exits_one(self, tmp_path):
        base = self._write(tmp_path, "a", _payload(workload="smoke"))
        curr = self._write(tmp_path, "b", _payload(workload="other"))
        _, code = regress(base, curr, 10.0)
        assert code == 1

    def test_count_mismatch_exits_one(self, tmp_path):
        base = self._write(tmp_path, "a", _payload(runs=2))
        curr = self._write(tmp_path, "b", _payload(runs=3))
        _, code = regress(base, curr, 10.0)
        assert code == 1

    def test_directory_matching_by_workload(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        for d in (a, b):
            d.mkdir()
            write_bench(_payload(workload="smoke"), d)
            write_bench(_payload(workload="smoke-jobs4"), d)
        comparisons, code = regress(a, b, 5.0)
        assert code == 0
        assert sorted(c.workload for c in comparisons) == ["smoke", "smoke-jobs4"]

    def test_discover_ignores_non_bench_files(self, tmp_path):
        write_bench(_payload(), tmp_path)
        (tmp_path / "other.json").write_text("{}")
        found = discover_bench_files(tmp_path)
        assert list(found) == ["smoke"]


class TestRegressCli:
    def test_exit_codes_and_report(self, tmp_path, capsys):
        base_dir, curr_dir = tmp_path / "base", tmp_path / "curr"
        base_dir.mkdir()
        curr_dir.mkdir()
        write_bench(_payload(runs_per_s=4.0), base_dir)
        write_bench(_payload(runs_per_s=1.0), curr_dir)
        assert main(["regress", str(base_dir), str(base_dir)]) == 0
        assert (
            main(
                [
                    "regress",
                    str(base_dir),
                    str(curr_dir),
                    "--tolerance-pct",
                    "10",
                ]
            )
            == 2
        )
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "FAIL" in out

    def test_huge_tolerance_tolerates(self, tmp_path):
        base_dir, curr_dir = tmp_path / "base", tmp_path / "curr"
        base_dir.mkdir()
        curr_dir.mkdir()
        write_bench(_payload(runs_per_s=4.0), base_dir)
        write_bench(_payload(runs_per_s=1.0), curr_dir)
        assert (
            main(
                [
                    "regress",
                    str(base_dir),
                    str(curr_dir),
                    "--tolerance-pct",
                    "900",
                ]
            )
            == 0
        )


class TestRunWorkload:
    def test_smoke_workload_payload_schema(self, tmp_path):
        payload = run_workload(WORKLOADS["smoke"])
        assert payload["schema"] == BENCH_SCHEMA_VERSION
        assert payload["workload"] == "smoke"
        assert payload["counts"]["runs"] == 2
        assert payload["counts"]["iterations"] > 0
        assert payload["totals"]["runs_per_s"] > 0
        assert payload["totals"]["mode"] == "serial"
        assert payload["phases"]["role.Generator"]["count"] > 0
        assert payload["roles"]["Generator"]["p99_ms"] >= 0.0
        path = write_bench(payload, tmp_path)
        assert path.name == bench_file_name("smoke")
        assert json.loads(path.read_text())["workload"] == "smoke"
        assert "throughput" in render_bench(payload)

    def test_unknown_repeat_rejected(self):
        with pytest.raises(ValueError):
            run_workload(WORKLOADS["smoke"], repeat=0)

    def test_bench_cli_unknown_workload(self, capsys):
        assert main(["bench", "no-such-workload"]) == 1
        assert "unknown workload" in capsys.readouterr().err


class TestSearchWorkload:
    def test_pinned_search_workload_registered(self):
        workload = WORKLOADS["search"]
        assert workload.kind == "search"
        assert workload.quick
        config = workload.config()
        assert config == {
            "kind": "search",
            "family": "pedestrian",
            "budget": 12,
            "search_seed": 0,
            "jobs": 1,
        }

    def test_campaign_config_shape_unchanged(self):
        config = WORKLOADS["smoke"].config()
        assert "kind" not in config
        assert set(config) == {
            "scenarios", "seeds", "jobs", "block_size", "deadline_ms", "breaker",
        }

    def test_search_workload_payload_schema(self, tmp_path):
        from repro.obs.bench import Workload

        workload = Workload(
            name="search-tiny",
            description="tiny falsification pass",
            scenarios=(),
            seeds=(),
            jobs=1,
            kind="search",
            family="pedestrian",
            budget=4,
            search_seed=0,
        )
        payload = run_workload(workload)
        assert payload["workload"] == "search-tiny"
        assert payload["counts"]["runs"] >= 4
        assert payload["counts"]["iterations"] > 0
        assert payload["totals"]["runs_per_s"] > 0
        assert payload["totals"]["mode"] == "serial"
        assert "search.evaluate" in payload["engine_phases"]
        assert payload["phases"]["role.Generator"]["count"] > 0
        path = write_bench(payload, tmp_path)
        assert json.loads(path.read_text())["config"]["kind"] == "search"
        assert "throughput" in render_bench(payload)

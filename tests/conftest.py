"""Shared fixtures and helper doubles for the test suite."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import pytest

from repro.core import Role, RoleContext, RoleKind, RoleResult, Verdict
from repro.env.interface import EnvironmentInterface
from repro.sim import Approach, IntersectionMap, Movement


class StubEnvironment(EnvironmentInterface):
    """Deterministic scripted environment for orchestrator tests.

    Serves a fixed sequence of world states, records applied actions, and
    reports done after ``steps`` ticks.
    """

    def __init__(self, steps: int = 5, states: Optional[List[Dict[str, Any]]] = None) -> None:
        self.steps = steps
        self.states = states
        self.applied: List[Any] = []
        self.reset_count = 0
        self._tick = 0

    def reset(self) -> None:
        self.reset_count += 1
        self._tick = 0
        self.applied.clear()

    def observe(self) -> Dict[str, Any]:
        if self.states is not None:
            index = min(self._tick, len(self.states) - 1)
            return dict(self.states[index])
        return {"tick": self._tick, "value": float(self._tick)}

    def apply_action(self, action: Any) -> None:
        self.applied.append(action)

    def advance(self) -> None:
        self._tick += 1

    @property
    def time(self) -> float:
        return self._tick * 0.1

    @property
    def done(self) -> bool:
        return self._tick >= self.steps

    def result_info(self) -> Dict[str, Any]:
        return {"ticks": self._tick}


class ScriptedRole(Role):
    """Role returning pre-baked results (cycled), for orchestrator tests."""

    def __init__(
        self,
        results: List[RoleResult],
        name: str = "Scripted",
        kind: RoleKind = RoleKind.CUSTOM,
    ) -> None:
        super().__init__(name)
        self.kind = kind
        self._results = results
        self.calls = 0
        self.reset_count = 0

    def reset(self) -> None:
        self.reset_count += 1
        self.calls = 0

    def execute(self, context: RoleContext) -> RoleResult:
        result = self._results[min(self.calls, len(self._results) - 1)]
        self.calls += 1
        # Return a fresh copy so the orchestrator's mutation of role_name
        # does not leak across iterations.
        return RoleResult(
            verdict=result.verdict,
            data=dict(result.data),
            scores=dict(result.scores),
            narrative=result.narrative,
        )


def constant_generator(action: Any, name: str = "Generator") -> ScriptedRole:
    """A generator role that always proposes ``action``."""
    return ScriptedRole(
        [RoleResult(verdict=Verdict.INFO, data={"action": action})],
        name=name,
        kind=RoleKind.GENERATOR,
    )


@pytest.fixture(scope="session")
def intersection_map() -> IntersectionMap:
    """A shared immutable intersection map (construction is not free)."""
    return IntersectionMap()


@pytest.fixture
def ego_route(intersection_map: IntersectionMap):
    return intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)

"""Tests for the OrchestrationController's iterative assurance loop."""

import pytest

from repro.core import (
    ConfigurationError,
    EventKind,
    OnVerdict,
    OrchestrationController,
    OrchestratorConfig,
    RoleExecutionError,
    RoleGraph,
    RoleKind,
    RoleResult,
    TerminationReason,
    Verdict,
)
from tests.conftest import ScriptedRole, StubEnvironment, constant_generator


class FailingRole(ScriptedRole):
    def execute(self, context):
        raise RuntimeError("deliberate")


class TestValidation:
    def test_requires_generator(self):
        env = StubEnvironment()
        monitor = ScriptedRole([RoleResult()], name="M", kind=RoleKind.SAFETY_MONITOR)
        with pytest.raises(ConfigurationError, match="Generator"):
            OrchestrationController([monitor], env)

    def test_requires_roles(self):
        with pytest.raises(ConfigurationError):
            OrchestrationController(RoleGraph(), StubEnvironment())


class TestLoop:
    def test_runs_until_environment_done(self):
        env = StubEnvironment(steps=4)
        controller = OrchestrationController([constant_generator("go")], env)
        result = controller.run()
        assert result.reason is TerminationReason.ENVIRONMENT_DONE
        assert result.iterations == 4
        assert env.applied == ["go"] * 4

    def test_max_iterations_cap(self):
        env = StubEnvironment(steps=100)
        controller = OrchestrationController(
            [constant_generator("go")],
            env,
            OrchestratorConfig(max_iterations=3),
        )
        result = controller.run()
        assert result.reason is TerminationReason.MAX_ITERATIONS
        assert result.iterations == 3

    def test_roles_reset_and_rerunnable(self):
        env = StubEnvironment(steps=2)
        generator = constant_generator("go")
        controller = OrchestrationController([generator], env)
        controller.run()
        result = controller.run()
        assert generator.reset_count == 2
        assert env.reset_count == 2
        assert result.iterations == 2

    def test_environment_info_propagated(self):
        env = StubEnvironment(steps=2)
        controller = OrchestrationController([constant_generator("go")], env)
        result = controller.run()
        assert result.environment_info == {"ticks": 2}

    def test_final_world_state_is_a_snapshot(self):
        env = StubEnvironment(steps=2, states=[{"nested": {"speed": 1.0}}])
        controller = OrchestrationController([constant_generator("go")], env)
        result = controller.run()
        assert result.final_world_state["nested"] == {"speed": 1.0}

        # Post-run mutation of the live state manager (top-level *and*
        # nested) must not leak into the already-returned result.
        controller.state.set_world("nested", {"speed": 99.0})
        controller.state.world("nested")["speed"] = 99.0
        assert result.final_world_state["nested"] == {"speed": 1.0}

        # Nor may a second run on the same controller rewrite it.
        second = controller.run()
        assert result.final_world_state["nested"] == {"speed": 1.0}
        assert second.final_world_state["nested"] == {"speed": 1.0}

    def test_world_state_reaches_roles(self):
        seen = []

        class Probe(ScriptedRole):
            def execute(self, context):
                seen.append(context.state.world("tick"))
                return RoleResult(verdict=Verdict.INFO, data={"action": "noop"})

        probe = Probe([RoleResult()], name="Gen", kind=RoleKind.GENERATOR)
        OrchestrationController([probe], StubEnvironment(steps=3)).run()
        assert seen == [0, 1, 2]


class TestViolationsAndHalting:
    def _monitor(self, verdicts):
        return ScriptedRole(
            [RoleResult(verdict=v, narrative="n") for v in verdicts],
            name="Monitor",
            kind=RoleKind.SAFETY_MONITOR,
        )

    def test_fail_verdict_recorded_as_safety_violation(self):
        env = StubEnvironment(steps=3)
        monitor = self._monitor([Verdict.PASS, Verdict.FAIL, Verdict.PASS])
        controller = OrchestrationController([constant_generator("go"), monitor], env)
        result = controller.run()
        assert result.metrics.violation_counts == {"safety": 1}
        assert result.metrics.violations[0].iteration == 1

    def test_violation_category_follows_role_kind(self):
        env = StubEnvironment(steps=1)
        oracle = ScriptedRole(
            [RoleResult(verdict=Verdict.FAIL)], name="Oracle", kind=RoleKind.PERFORMANCE_ORACLE
        )
        controller = OrchestrationController([constant_generator("go"), oracle], env)
        result = controller.run()
        assert result.metrics.violation_counts == {"performance": 1}

    def test_halt_on_violation(self):
        env = StubEnvironment(steps=10)
        monitor = self._monitor([Verdict.PASS, Verdict.FAIL])
        controller = OrchestrationController(
            [constant_generator("go"), monitor],
            env,
            OrchestratorConfig(halt_on_violation=True),
        )
        result = controller.run()
        assert result.reason is TerminationReason.VIOLATION_HALT
        assert result.iterations == 2

    def test_violation_event_published(self):
        env = StubEnvironment(steps=2)
        monitor = self._monitor([Verdict.FAIL])
        controller = OrchestrationController([constant_generator("go"), monitor], env)
        controller.run()
        events = controller.events.events_of_kind(EventKind.VIOLATION_DETECTED)
        assert len(events) == 2  # scripted monitor repeats its last result
        assert events[0].role == "Monitor"


class TestErrorHandling:
    def test_role_error_propagates_by_default(self):
        env = StubEnvironment(steps=2)
        bad = FailingRole([RoleResult()], name="Bad")
        controller = OrchestrationController([constant_generator("go"), bad], env)
        with pytest.raises(RoleExecutionError, match="Bad"):
            controller.run()

    def test_continue_on_role_error(self):
        env = StubEnvironment(steps=3)
        bad = FailingRole([RoleResult()], name="Bad")
        controller = OrchestrationController(
            [constant_generator("go"), bad],
            env,
            OrchestratorConfig(continue_on_role_error=True),
        )
        result = controller.run()
        assert result.iterations == 3
        assert result.metrics.violation_counts == {"role_error": 3}

    def test_non_roleresult_return_rejected(self):
        class Wrong(ScriptedRole):
            def execute(self, context):
                return "not a result"

        env = StubEnvironment(steps=1)
        wrong = Wrong([RoleResult()], name="Wrong", kind=RoleKind.GENERATOR)
        with pytest.raises(RoleExecutionError, match="RoleResult"):
            OrchestrationController([wrong], env).run()


class TestDecision:
    def test_recovery_action_overrides_generator(self):
        env = StubEnvironment(steps=2)
        recovery = ScriptedRole(
            [RoleResult(verdict=Verdict.WARNING, data={"action": "brake"})],
            name="Recovery",
            kind=RoleKind.RECOVERY_PLANNER,
        )
        controller = OrchestrationController([constant_generator("go"), recovery], env)
        result = controller.run()
        assert env.applied == ["brake", "brake"]
        assert result.metrics.recovery_activation_count == 2

    def test_recovery_without_action_defers_to_generator(self):
        env = StubEnvironment(steps=1)
        recovery = ScriptedRole(
            [RoleResult(verdict=Verdict.PASS, data={"action": None})],
            name="Recovery",
            kind=RoleKind.RECOVERY_PLANNER,
        )
        controller = OrchestrationController([constant_generator("go"), recovery], env)
        controller.run()
        assert env.applied == ["go"]

    def test_skipped_generator_applies_none(self):
        env = StubEnvironment(steps=1)
        generator = constant_generator("go")
        graph = RoleGraph().add(generator, trigger=OnVerdict("nonexistent"))
        controller = OrchestrationController(graph, env)
        controller.run()
        assert env.applied == [None]
        skips = controller.events.events_of_kind(EventKind.ROLE_SKIPPED)
        assert len(skips) == 1

    def test_action_source_recorded_in_history(self):
        env = StubEnvironment(steps=1)
        controller = OrchestrationController([constant_generator("go")], env)
        controller.run()
        record = controller.state.history[-1]
        assert record.action_source == "Generator"
        assert record.executed_action == "go"


class TestEventsAndScores:
    def test_event_sequence_per_iteration(self):
        env = StubEnvironment(steps=1)
        controller = OrchestrationController([constant_generator("go")], env)
        controller.run()
        kinds = [e.kind for e in controller.events.log]
        assert kinds[0] is EventKind.ITERATION_STARTED
        assert EventKind.STATE_UPDATED in kinds
        assert EventKind.ACTION_EXECUTED in kinds
        assert kinds[-1] is EventKind.RUN_TERMINATED

    def test_role_scores_become_metric_series(self):
        env = StubEnvironment(steps=2)
        scored = ScriptedRole(
            [RoleResult(verdict=Verdict.PASS, scores={"margin": 1.5})],
            name="Scored",
            kind=RoleKind.SAFETY_MONITOR,
        )
        controller = OrchestrationController([constant_generator("go"), scored], env)
        result = controller.run()
        assert result.metrics.series_values("score.Scored.margin") == [1.5, 1.5]

    def test_role_timings_collected(self):
        env = StubEnvironment(steps=3)
        controller = OrchestrationController([constant_generator("go")], env)
        result = controller.run()
        assert result.metrics.role_timings()["Generator"]["calls"] == 3

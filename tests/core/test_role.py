"""Tests for the Role/RoleResult/Verdict primitives."""

import pytest

from repro.core import (
    DependabilityMetrics,
    Role,
    RoleContext,
    RoleKind,
    RoleResult,
    StateManager,
    Verdict,
)


class TestVerdict:
    def test_only_fail_is_violation(self):
        assert Verdict.FAIL.is_violation
        for verdict in (Verdict.PASS, Verdict.WARNING, Verdict.INFO):
            assert not verdict.is_violation

    def test_values_are_stable_strings(self):
        # Trigger configs and trace files serialize these; renaming breaks
        # stored experiments.
        assert Verdict.FAIL.value == "fail"
        assert Verdict.PASS.value == "pass"
        assert Verdict.WARNING.value == "warning"
        assert Verdict.INFO.value == "info"


class TestRoleResult:
    def test_ok_constructor(self):
        result = RoleResult.ok(action="go", margin=2.0)
        assert result.verdict is Verdict.PASS
        assert result.data == {"action": "go", "margin": 2.0}

    def test_violation_constructor(self):
        result = RoleResult.violation("too close", distance=0.5)
        assert result.verdict is Verdict.FAIL
        assert result.narrative == "too close"
        assert result.data == {"distance": 0.5}

    def test_defaults_are_fresh_per_instance(self):
        a, b = RoleResult(), RoleResult()
        a.data["k"] = 1
        assert b.data == {}


class TestRoleBase:
    class Minimal(Role):
        kind = RoleKind.CUSTOM

        def execute(self, context):
            return RoleResult()

    def test_default_name_is_class_name(self):
        assert self.Minimal().name == "Minimal"

    def test_explicit_name(self):
        assert self.Minimal("Custom").name == "Custom"

    def test_repr_mentions_name_and_kind(self):
        text = repr(self.Minimal("X"))
        assert "X" in text and "custom" in text

    def test_reset_is_optional_noop(self):
        self.Minimal().reset()  # must not raise

    def test_abstract_execute_required(self):
        class Incomplete(Role):
            pass

        with pytest.raises(TypeError):
            Incomplete()  # type: ignore[abstract]


class TestRoleContext:
    def test_carries_shared_services(self):
        state, metrics = StateManager(), DependabilityMetrics()
        context = RoleContext(
            state=state, metrics=metrics, iteration=3, time=0.3, config={"x": 1}
        )
        assert context.state is state
        assert context.metrics is metrics
        assert context.iteration == 3
        assert context.config["x"] == 1

"""Tests for the STL and counterexample sections of the report builders."""

from repro.analysis.trace_checks import PropertyVerdict
from repro.core import OrchestrationController, build_markdown_report, build_report
from tests.conftest import StubEnvironment, constant_generator


def _result():
    controller = OrchestrationController(
        [constant_generator("go")], StubEnvironment(steps=1)
    )
    return controller.run()


def _counterexample():
    return {
        "family": "pedestrian",
        "index": 0,
        "robustness": -0.081,
        "minimized_robustness": -0.081,
        "collision": True,
        "outside_default_jitter": True,
        "reverted_dims": ["veh_time", "veh_speed"],
    }


class TestPlainReport:
    def test_sections_absent_by_default(self):
        report = build_report(_result())
        assert "STL properties" not in report
        assert "Counterexamples" not in report

    def test_stl_section(self):
        verdicts = [
            PropertyVerdict("safety", "G (x >= 1)", 0.42),
            PropertyVerdict("violated", "G (y >= 1)", -0.2),
        ]
        report = build_report(_result(), stl=verdicts)
        assert "STL properties (offline, recorded trace)" in report
        assert "SAT" in report
        assert "VIOLATED" in report

    def test_counterexample_section(self):
        report = build_report(_result(), counterexamples=[_counterexample()])
        assert "Counterexamples (scenario search)" in report
        assert "[pedestrian#0]" in report
        assert "outside default jitter" in report
        assert "veh_time" in report

    def test_empty_counterexample_list_still_renders_section(self):
        report = build_report(_result(), counterexamples=[])
        assert "Counterexamples (scenario search)" in report


class TestMarkdownReport:
    def test_sections_absent_by_default(self):
        report = build_markdown_report(_result())
        assert "## STL properties" not in report
        assert "## Counterexamples" not in report

    def test_stl_table(self):
        verdicts = [PropertyVerdict("safety", "G (x >= 1)", -1.5)]
        report = build_markdown_report(_result(), stl=verdicts)
        assert "## STL properties" in report
        assert "| `safety` |" in report
        assert "**VIOLATED**" in report

    def test_counterexample_bullets(self):
        report = build_markdown_report(
            _result(), counterexamples=[_counterexample()]
        )
        assert "## Counterexamples (scenario search)" in report
        assert "[pedestrian#0]" in report

"""Integration tests: the resilience layer inside the assurance loop."""

from __future__ import annotations

import time

import pytest

from repro.core import (
    EventKind,
    OrchestrationController,
    OrchestratorConfig,
    ResilienceConfig,
    ResilienceError,
    Role,
    RoleContext,
    RoleGraph,
    RoleKind,
    RoleResult,
    TerminationReason,
    Verdict,
    build_markdown_report,
    build_report,
)

from ..conftest import ScriptedRole, StubEnvironment, constant_generator


class FlakyGenerator(Role):
    """Generator raising inside a half-open iteration window, else planning."""

    kind = RoleKind.GENERATOR

    def __init__(self, crash_window, action="go", name="Generator") -> None:
        super().__init__(name)
        self.crash_window = crash_window
        self.action = action
        self.calls = 0

    def reset(self) -> None:
        self.calls = 0

    def execute(self, context: RoleContext) -> RoleResult:
        self.calls += 1
        start, stop = self.crash_window
        if start <= context.iteration < stop:
            raise RuntimeError(f"outage at iteration {context.iteration}")
        return RoleResult(verdict=Verdict.INFO, data={"action": self.action})


class SleepyRole(Role):
    kind = RoleKind.CUSTOM

    def __init__(self, sleep_s: float, name: str = "Sleepy") -> None:
        super().__init__(name)
        self.sleep_s = sleep_s

    def execute(self, context: RoleContext) -> RoleResult:
        time.sleep(self.sleep_s)
        return RoleResult(verdict=Verdict.PASS)


def breaker_config(**overrides):
    defaults = dict(
        breaker_threshold=2,
        breaker_cooldown=3,
        fallback=constant_generator("fb", name="Fallback"),
        safe_action="SAFE",
        max_hold=3,
    )
    defaults.update(overrides)
    return ResilienceConfig(**defaults)


class TestBreakerLifecycle:
    def build(self, steps=20, crash=(2, 9)):
        env = StubEnvironment(steps=steps)
        generator = FlakyGenerator(crash)
        controller = OrchestrationController(
            [generator],
            env,
            OrchestratorConfig(resilience=breaker_config()),
        )
        return controller, env, generator

    def test_full_degrade_and_recover_sequence(self):
        controller, env, _ = self.build()
        result = controller.run()

        # The environment never saw a missing decision.
        assert None not in env.applied
        # Failures at iters 2,3 open the breaker (threshold 2); fallback
        # plans through the cooldown; a failed probe at 6 re-opens it; the
        # probe at 9 (outage over) recovers.
        assert env.applied == (
            ["go", "go"]            # healthy
            + ["go", "go"]          # failing, action-hold re-issues "go"
            + ["fb", "fb"]          # breaker open: fallback plans
            + ["fb"]                # failed probe: hold re-issues the fallback's action
            + ["fb", "fb"]          # re-opened: fallback plans
            + ["go"] * 11           # recovered
        )

        entered = controller.events.events_of_kind(EventKind.DEGRADED_MODE_ENTERED)
        exited = controller.events.events_of_kind(EventKind.DEGRADED_MODE_EXITED)
        assert len(entered) == 1  # the failed probe is not a new entry
        assert len(exited) == 1
        assert entered[0].payload["fallback"] == "Fallback"

        metrics = result.metrics
        assert metrics.count("resilience.degraded.entered") == 1
        assert metrics.count("resilience.degraded.exited") == 1
        assert metrics.count("resilience.degraded.iterations") == 4
        assert metrics.breaker_states == {"Generator": "closed"}
        health = metrics.role_health["Generator"]
        assert health.failures == 3  # iters 2, 3 and the failed probe at 6
        assert health.consecutive_failures == 0

    def test_health_and_reports_carry_the_evidence(self):
        controller, _, _ = self.build()
        result = controller.run()
        summary = result.metrics.summary()
        assert "resilience" in summary
        res = summary["resilience"]
        assert res["degraded_entered"] == 1
        assert res["degraded_exited"] == 1
        assert res["breaker_states"] == {"Generator": "closed"}

        text = build_report(result, controller.events)
        assert "Resilience" in text
        assert "degraded_entered" in text
        markdown = build_markdown_report(result)
        assert "## Resilience" in markdown
        assert "Degraded-mode entries" in markdown

    def test_rerun_resets_breaker_state(self):
        controller, env, _ = self.build()
        first = controller.run()
        second = controller.run()
        assert second.metrics.count("resilience.degraded.entered") == 1
        assert first.metrics.count("resilience.degraded.entered") == 1
        assert None not in env.applied

    def test_breaker_absorbs_errors_even_when_strict(self):
        # continue_on_role_error stays False: the breaker still contains
        # the guarded Generator's exceptions instead of tearing down the run.
        controller, env, _ = self.build()
        assert controller.config.continue_on_role_error is False
        result = controller.run()
        assert result.reason is TerminationReason.ENVIRONMENT_DONE
        assert result.metrics.count("violations.role_error") == 3

    def test_fallback_name_collision_rejected(self):
        env = StubEnvironment(steps=3)
        config = OrchestratorConfig(
            resilience=breaker_config(
                fallback=constant_generator("fb", name="Generator")
            )
        )
        with pytest.raises(ResilienceError):
            OrchestrationController([FlakyGenerator((0, 1))], env, config)


class TestRetries:
    def test_transient_failure_retried_within_iteration(self):
        class OnceFlaky(Role):
            kind = RoleKind.GENERATOR

            def __init__(self):
                super().__init__("Generator")
                self.attempts = 0

            def execute(self, context):
                self.attempts += 1
                if self.attempts == 1:
                    raise RuntimeError("transient")
                return RoleResult(verdict=Verdict.INFO, data={"action": "go"})

        env = StubEnvironment(steps=3)
        controller = OrchestrationController(
            [OnceFlaky()],
            env,
            OrchestratorConfig(resilience=breaker_config(max_retries=1)),
        )
        result = controller.run()
        retried = controller.events.events_of_kind(EventKind.ROLE_RETRIED)
        assert len(retried) == 1
        assert retried[0].payload["attempt"] == 1
        assert result.metrics.count("resilience.retries") == 1
        assert result.metrics.count("violations.role_error") == 0
        assert env.applied == ["go", "go", "go"]


class TestActionHoldInLoop:
    def test_hold_then_safe_action_when_generator_abstains(self):
        # Proposes an action once, then abstains (no 'action' key) forever.
        generator = ScriptedRole(
            [
                RoleResult(verdict=Verdict.INFO, data={"action": "go"}),
                RoleResult(verdict=Verdict.INFO, data={}),
            ],
            name="Generator",
            kind=RoleKind.GENERATOR,
        )
        env = StubEnvironment(steps=6)
        controller = OrchestrationController(
            [generator],
            env,
            OrchestratorConfig(
                resilience=ResilienceConfig(max_hold=2, safe_action="SAFE")
            ),
        )
        result = controller.run()
        assert env.applied == ["go", "go", "go", "SAFE", "SAFE", "SAFE"]
        held = controller.events.events_of_kind(EventKind.ACTION_HELD)
        assert [e.payload["policy"] for e in held] == [
            "hold", "hold", "safe_action", "safe_action", "safe_action",
        ]
        assert result.metrics.count("resilience.holds") == 2
        assert result.metrics.count("resilience.hold_exhausted") == 3

    def test_legacy_none_behaviour_without_resilience(self):
        generator = ScriptedRole(
            [RoleResult(verdict=Verdict.INFO, data={})],
            name="Generator",
            kind=RoleKind.GENERATOR,
        )
        env = StubEnvironment(steps=2)
        OrchestrationController([generator], env).run()
        assert env.applied == [None, None]


class TestDeadlines:
    def test_overrun_is_a_performance_violation(self):
        env = StubEnvironment(steps=2)
        controller = OrchestrationController(
            [constant_generator("go"), SleepyRole(sleep_s=0.02)],
            env,
            OrchestratorConfig(
                resilience=ResilienceConfig(
                    deadline_ms=100.0, role_deadlines_ms={"Sleepy": 1.0}
                )
            ),
        )
        result = controller.run()
        metrics = result.metrics
        assert metrics.count("resilience.deadline_overruns") == 2
        assert metrics.role_health["Sleepy"].overruns == 2
        violations = metrics.violations_of("performance")
        assert len(violations) == 2
        assert "deadline exceeded" in violations[0].detail
        events = controller.events.events_of_kind(EventKind.DEADLINE_EXCEEDED)
        assert len(events) == 2
        assert events[0].payload["budget_ms"] == 1.0
        # The generous generator budget never fires.
        assert "Generator" not in metrics.role_health or (
            metrics.role_health["Generator"].overruns == 0
        )

    def test_deadline_overrun_halts_when_configured(self):
        env = StubEnvironment(steps=5)
        controller = OrchestrationController(
            [constant_generator("go"), SleepyRole(sleep_s=0.02)],
            env,
            OrchestratorConfig(
                halt_on_violation=True,
                resilience=ResilienceConfig(role_deadlines_ms={"Sleepy": 1.0}),
            ),
        )
        result = controller.run()
        assert result.reason is TerminationReason.VIOLATION_HALT
        assert result.iterations == 1


class TestRoleErrorVerdict:
    def test_role_error_counts_as_violation_for_halt(self):
        # Regression: a raising role used to be recorded as a violation but
        # returned WARNING, so halt_on_violation never fired on role errors.
        failing = ScriptedRole([RoleResult()], name="Broken")
        failing.execute = lambda context: (_ for _ in ()).throw(RuntimeError("boom"))
        env = StubEnvironment(steps=5)
        controller = OrchestrationController(
            [constant_generator("go"), failing],
            env,
            OrchestratorConfig(halt_on_violation=True, continue_on_role_error=True),
        )
        result = controller.run()
        assert result.reason is TerminationReason.VIOLATION_HALT
        assert result.iterations == 1
        assert result.metrics.count("violations.role_error") == 1


class TestDecideAction:
    def test_abstaining_generator_does_not_mask_second_generator(self):
        abstainer = ScriptedRole(
            [RoleResult(verdict=Verdict.INFO, data={})],
            name="Primary",
            kind=RoleKind.GENERATOR,
        )
        proposer = constant_generator("g2", name="Secondary")
        env = StubEnvironment(steps=2)
        controller = OrchestrationController(
            RoleGraph.sequential([abstainer, proposer]), env
        )
        controller.run()
        assert env.applied == ["g2", "g2"]
        executed = controller.events.events_of_kind(EventKind.ACTION_EXECUTED)
        assert executed[0].payload["source"] == "Secondary"

    def test_first_proposing_generator_wins(self):
        first = constant_generator("g1", name="Primary")
        second = constant_generator("g2", name="Secondary")
        env = StubEnvironment(steps=1)
        controller = OrchestrationController(
            RoleGraph.sequential([first, second]), env
        )
        controller.run()
        assert env.applied == ["g1"]

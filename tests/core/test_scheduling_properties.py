"""Property-based tests for role scheduling over random DAGs."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core import RoleGraph, RoleResult
from tests.conftest import ScriptedRole


@st.composite
def random_dags(draw):
    """A random DAG as (node count, edge set) with edges j -> i for j < i.

    Orienting every edge from a lower to a higher node index guarantees
    acyclicity by construction.
    """
    n = draw(st.integers(min_value=1, max_value=10))
    edges = set()
    for i in range(n):
        # Each node may depend on any subset of earlier nodes.
        parents = draw(
            st.sets(st.integers(min_value=0, max_value=max(0, i - 1)), max_size=3)
        ) if i > 0 else set()
        for p in parents:
            edges.add((p, i))
    return n, edges


@given(random_dags())
def test_topological_order_respects_every_edge(dag):
    n, edges = dag
    graph = RoleGraph()
    names = [f"r{i}" for i in range(n)]
    for i, name in enumerate(names):
        after = [f"r{p}" for p, child in edges if child == i]
        graph.add(ScriptedRole([RoleResult()], name=name), after=after)

    order = [s.name for s in graph.execution_order()]
    assert sorted(order) == sorted(names)  # everyone scheduled exactly once
    position = {name: idx for idx, name in enumerate(order)}
    for parent, child in edges:
        assert position[f"r{parent}"] < position[f"r{child}"]


@given(random_dags())
def test_order_is_deterministic_across_builds(dag):
    n, edges = dag

    def build():
        graph = RoleGraph()
        for i in range(n):
            after = [f"r{p}" for p, child in edges if child == i]
            graph.add(ScriptedRole([RoleResult()], name=f"r{i}"), after=after)
        return [s.name for s in graph.execution_order()]

    assert build() == build()

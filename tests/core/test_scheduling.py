"""Tests for the role dependency graph and execution ordering."""

import pytest

from repro.core import (
    Always,
    Never,
    RoleGraph,
    RoleResult,
    SchedulingError,
)
from tests.conftest import ScriptedRole


def role(name: str) -> ScriptedRole:
    return ScriptedRole([RoleResult()], name=name)


class TestRegistration:
    def test_duplicate_names_rejected(self):
        graph = RoleGraph()
        graph.add(role("A"))
        with pytest.raises(SchedulingError):
            graph.add(role("A"))

    def test_contains_and_len(self):
        graph = RoleGraph().add(role("A")).add(role("B"))
        assert "A" in graph and "B" in graph and "C" not in graph
        assert len(graph) == 2

    def test_get_unknown_role(self):
        with pytest.raises(SchedulingError, match="unknown role"):
            RoleGraph().get("missing")

    def test_default_trigger_is_always(self):
        graph = RoleGraph().add(role("A"))
        assert isinstance(graph.get("A").trigger, Always)

    def test_custom_trigger_kept(self):
        graph = RoleGraph().add(role("A"), trigger=Never())
        assert isinstance(graph.get("A").trigger, Never)


class TestOrdering:
    def test_registration_order_without_dependencies(self):
        graph = RoleGraph().add(role("C")).add(role("A")).add(role("B"))
        assert [s.name for s in graph.execution_order()] == ["C", "A", "B"]

    def test_dependencies_respected(self):
        graph = RoleGraph()
        graph.add(role("monitor"), after=["generator"])
        graph.add(role("generator"))
        order = [s.name for s in graph.execution_order()]
        assert order.index("generator") < order.index("monitor")

    def test_diamond_dependency(self):
        graph = RoleGraph()
        graph.add(role("A"))
        graph.add(role("B"), after=["A"])
        graph.add(role("C"), after=["A"])
        graph.add(role("D"), after=["B", "C"])
        order = [s.name for s in graph.execution_order()]
        assert order[0] == "A" and order[-1] == "D"
        assert set(order[1:3]) == {"B", "C"}

    def test_unknown_dependency(self):
        graph = RoleGraph().add(role("A"), after=["ghost"])
        with pytest.raises(SchedulingError, match="unknown role"):
            graph.execution_order()

    def test_cycle_detected(self):
        graph = RoleGraph()
        graph.add(role("A"), after=["B"])
        graph.add(role("B"), after=["A"])
        with pytest.raises(SchedulingError, match="cycle"):
            graph.execution_order()

    def test_self_cycle_detected(self):
        graph = RoleGraph().add(role("A"), after=["A"])
        with pytest.raises(SchedulingError, match="cycle"):
            graph.execution_order()

    def test_order_is_deterministic(self):
        def build():
            graph = RoleGraph()
            for name in ("X", "Y", "Z"):
                graph.add(role(name))
            graph.add(role("W"), after=["X", "Z"])
            return [s.name for s in graph.execution_order()]

        assert build() == build()


class TestSequential:
    def test_sequential_builds_chain(self):
        roles = [role("A"), role("B"), role("C")]
        graph = RoleGraph.sequential(roles)
        order = [s.name for s in graph.execution_order()]
        assert order == ["A", "B", "C"]
        assert graph.get("B").after == ["A"]
        assert graph.get("C").after == ["B"]

    def test_sequential_with_triggers(self):
        trigger = Never()
        graph = RoleGraph.sequential([role("A"), role("B")], triggers={"B": trigger})
        assert graph.get("B").trigger is trigger
        assert isinstance(graph.get("A").trigger, Always)

    def test_roles_property_registration_order(self):
        roles = [role("B"), role("A")]
        graph = RoleGraph.sequential(roles)
        assert [r.name for r in graph.roles] == ["B", "A"]

"""Tests for trigger predicates and combinators."""

import pytest

from repro.core import (
    After,
    Always,
    DependabilityMetrics,
    Never,
    OnVerdict,
    OnWorldState,
    Periodic,
    RoleContext,
    RoleResult,
    StateManager,
    Verdict,
)


def context(iteration=0, time=0.0, state=None):
    return RoleContext(
        state=state or StateManager(),
        metrics=DependabilityMetrics(),
        iteration=iteration,
        time=time,
    )


class TestBasicTriggers:
    def test_always(self):
        assert Always().should_run(context())

    def test_never(self):
        assert not Never().should_run(context())

    def test_periodic(self):
        trigger = Periodic(every=3)
        fired = [i for i in range(9) if trigger.should_run(context(iteration=i))]
        assert fired == [0, 3, 6]

    def test_periodic_with_offset(self):
        trigger = Periodic(every=3, offset=1)
        fired = [i for i in range(9) if trigger.should_run(context(iteration=i))]
        assert fired == [1, 4, 7]

    def test_periodic_invalid(self):
        with pytest.raises(ValueError):
            Periodic(every=0)

    def test_after(self):
        trigger = After(2.0)
        assert not trigger.should_run(context(time=1.9))
        assert trigger.should_run(context(time=2.0))


class TestOnVerdict:
    def _state_with(self, verdict):
        state = StateManager()
        state.begin_iteration(0, 0.0)
        state.record_output(RoleResult(role_name="Monitor", verdict=verdict))
        return state

    def test_fires_on_matching_verdict(self):
        trigger = OnVerdict("Monitor", (Verdict.FAIL,))
        assert trigger.should_run(context(state=self._state_with(Verdict.FAIL)))

    def test_silent_on_other_verdict(self):
        trigger = OnVerdict("Monitor", (Verdict.FAIL,))
        assert not trigger.should_run(context(state=self._state_with(Verdict.PASS)))

    def test_silent_when_role_absent(self):
        trigger = OnVerdict("Monitor")
        state = StateManager()
        state.begin_iteration(0, 0.0)
        assert not trigger.should_run(context(state=state))

    def test_multiple_verdicts(self):
        trigger = OnVerdict("Monitor", (Verdict.FAIL, Verdict.WARNING))
        assert trigger.should_run(context(state=self._state_with(Verdict.WARNING)))


class TestOnWorldState:
    def test_predicate_receives_context(self):
        state = StateManager()
        state.update_world_state({"speed": 7.0})
        trigger = OnWorldState(lambda ctx: ctx.state.world("speed", 0) > 5)
        assert trigger.should_run(context(state=state))

    def test_description_defaults_to_name(self):
        def fast(ctx):
            return True

        assert OnWorldState(fast).description == "fast"


class TestCombinators:
    def test_and(self):
        assert (Always() & Always()).should_run(context())
        assert not (Always() & Never()).should_run(context())

    def test_or(self):
        assert (Never() | Always()).should_run(context())
        assert not (Never() | Never()).should_run(context())

    def test_invert(self):
        assert (~Never()).should_run(context())
        assert not (~Always()).should_run(context())

    def test_composition(self):
        trigger = (After(1.0) & Periodic(every=2)) | Never()
        assert trigger.should_run(context(iteration=2, time=1.5))
        assert not trigger.should_run(context(iteration=1, time=1.5))

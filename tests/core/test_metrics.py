"""Tests for the DependabilityMetrics collector."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import DependabilityMetrics


class TestViolations:
    def test_counts_by_category(self):
        metrics = DependabilityMetrics()
        metrics.record_violation("safety", "Monitor", 1, 0.1)
        metrics.record_violation("safety", "Monitor", 2, 0.2)
        metrics.record_violation("security", "Assessor", 3, 0.3)
        assert metrics.violation_counts == {"safety": 2, "security": 1}
        assert metrics.count("violations.safety") == 2

    def test_violations_of_filters(self):
        metrics = DependabilityMetrics()
        metrics.record_violation("safety", "M", 1, 0.1, detail="d1")
        metrics.record_violation("performance", "P", 1, 0.1)
        safety = metrics.violations_of("safety")
        assert len(safety) == 1
        assert safety[0].detail == "d1"


class TestSeries:
    def test_series_round_trip(self):
        metrics = DependabilityMetrics()
        metrics.record_series("speed", 0.1, 5.0)
        metrics.record_series("speed", 0.2, 7.0)
        assert metrics.series("speed") == [(0.1, 5.0), (0.2, 7.0)]
        assert metrics.series_values("speed") == [5.0, 7.0]

    def test_summary_statistics(self):
        metrics = DependabilityMetrics()
        for t, v in enumerate([1.0, 3.0, 2.0]):
            metrics.record_series("x", float(t), v)
        summary = metrics.series_summary("x")
        assert summary["mean"] == pytest.approx(2.0)
        assert summary["max"] == 3.0
        assert summary["min"] == 1.0
        assert summary["last"] == 2.0

    def test_empty_series_summary(self):
        assert DependabilityMetrics().series_summary("nope") == {}

    def test_scores_namespace(self):
        metrics = DependabilityMetrics()
        metrics.record_score("margin", 0.1, 1.5)
        assert metrics.series("score.margin") == [(0.1, 1.5)]

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1))
    def test_summary_bounds(self, values):
        metrics = DependabilityMetrics()
        for i, v in enumerate(values):
            metrics.record_series("x", float(i), v)
        summary = metrics.series_summary("x")
        assert summary["min"] <= summary["mean"] <= summary["max"]


class TestRecoveryAndFaults:
    def test_fault_recording(self):
        metrics = DependabilityMetrics()
        metrics.record_fault("ghost_obstacle", 5, 0.5, "detail")
        assert len(metrics.faults) == 1
        assert metrics.count("faults.ghost_obstacle") == 1

    def test_recovery_outcome_marking(self):
        metrics = DependabilityMetrics()
        metrics.record_recovery(1, 0.1, "emergency_brake")
        metrics.record_recovery(2, 0.2, "emergency_brake")
        assert metrics.recovery_activation_count == 2
        assert all(r.prevented_collision is None for r in metrics.recoveries)
        metrics.mark_recovery_outcomes(prevented_collision=True)
        assert all(r.prevented_collision is True for r in metrics.recoveries)


class TestTimings:
    def test_role_timing_aggregation(self):
        metrics = DependabilityMetrics()
        metrics.record_role_timing("Generator", 0.002)
        metrics.record_role_timing("Generator", 0.004)
        stats = metrics.role_timings()["Generator"]
        assert stats["calls"] == 2
        assert stats["total_s"] == pytest.approx(0.006)
        assert stats["mean_s"] == pytest.approx(0.003)


class TestSummary:
    def test_summary_is_json_friendly(self):
        import json

        metrics = DependabilityMetrics()
        metrics.record_violation("safety", "M", 1, 0.1)
        metrics.record_series("x", 0.1, 1.0)
        metrics.record_role_timing("M", 0.001)
        metrics.increment("custom")
        metrics.iterations_completed = 7
        summary = metrics.summary()
        assert json.dumps(summary)  # serializable
        assert summary["iterations_completed"] == 7
        assert summary["violation_counts"] == {"safety": 1}
        assert summary["counters"]["custom"] == 1

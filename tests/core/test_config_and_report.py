"""Tests for orchestrator configuration validation and report rendering."""

import pytest

from repro.core import (
    ConfigurationError,
    OrchestrationController,
    OrchestratorConfig,
    RoleKind,
    RoleResult,
    Verdict,
    build_report,
    metrics_digest,
)
from tests.conftest import ScriptedRole, StubEnvironment, constant_generator


class TestConfig:
    def test_defaults_valid(self):
        config = OrchestratorConfig()
        assert config.max_iterations == 2000

    def test_invalid_max_iterations(self):
        with pytest.raises(ConfigurationError):
            OrchestratorConfig(max_iterations=0)

    def test_invalid_history_limit(self):
        with pytest.raises(ConfigurationError):
            OrchestratorConfig(history_limit=-1)

    def test_invalid_event_log_limit(self):
        with pytest.raises(ConfigurationError):
            OrchestratorConfig(event_log_limit=0)

    def test_event_log_limit_caps_bus(self):
        controller = OrchestrationController(
            [constant_generator("go")],
            StubEnvironment(steps=5),
            OrchestratorConfig(event_log_limit=4),
        )
        controller.run()
        assert len(controller.events.log) == 4
        assert controller.events.dropped_events > 0

    def test_none_values_allowed(self):
        config = OrchestratorConfig(max_iterations=None, history_limit=None)
        assert config.max_iterations is None

    def test_role_config_reaches_context(self):
        seen = {}

        class Probe(ScriptedRole):
            def execute(self, context):
                seen.update(context.config)
                return RoleResult(verdict=Verdict.INFO, data={"action": None})

        probe = Probe([RoleResult()], name="G", kind=RoleKind.GENERATOR)
        controller = OrchestrationController(
            [probe],
            StubEnvironment(steps=1),
            OrchestratorConfig(role_config={"threshold": 2.5}),
        )
        controller.run()
        assert seen == {"threshold": 2.5}


class TestReport:
    def _run(self):
        monitor = ScriptedRole(
            [
                RoleResult(verdict=Verdict.FAIL, narrative="too close"),
                RoleResult(verdict=Verdict.PASS, scores={"margin": 2.0}),
            ],
            name="Monitor",
            kind=RoleKind.SAFETY_MONITOR,
        )
        recovery = ScriptedRole(
            [RoleResult(verdict=Verdict.WARNING, data={"action": "brake"})],
            name="Recovery",
            kind=RoleKind.RECOVERY_PLANNER,
        )
        controller = OrchestrationController(
            [constant_generator("go"), monitor, recovery], StubEnvironment(steps=3)
        )
        return controller, controller.run()

    def test_report_sections_present(self):
        controller, result = self._run()
        report = build_report(result, events=controller.events)
        for heading in (
            "Run outcome",
            "Violations",
            "Fault injections",
            "Recovery",
            "Performance series",
            "Role processing time",
            "Evidence trail",
        ):
            assert heading in report

    def test_report_mentions_violation_detail(self):
        controller, result = self._run()
        report = build_report(result, events=controller.events)
        assert "too close" in report
        assert "safety" in report

    def test_report_without_events(self):
        _, result = self._run()
        report = build_report(result)
        assert "Evidence trail" not in report

    def test_clean_run_report(self):
        controller = OrchestrationController(
            [constant_generator("go")], StubEnvironment(steps=1)
        )
        report = build_report(controller.run())
        assert "none detected" in report

    def test_report_without_telemetry_has_no_digest(self):
        _, result = self._run()
        assert "Telemetry digest" not in build_report(result)

    def test_report_telemetry_digest(self):
        from repro.obs.telemetry import TelemetryRegistry

        _, result = self._run()
        registry = TelemetryRegistry()
        registry.counter("events.role_executed").inc(9)
        registry.histogram("role_latency_s.Monitor").record(0.004)
        report = build_report(result, telemetry=registry)
        assert "Telemetry digest" in report
        assert "events.role_executed" in report
        assert "role_latency_s.Monitor" in report

    def test_metrics_digest_one_line(self):
        _, result = self._run()
        digest = metrics_digest(result.metrics)
        assert "\n" not in digest
        assert "iterations=3" in digest
        assert "safety=1" in digest

    def test_digest_clean(self):
        controller = OrchestrationController(
            [constant_generator("go")], StubEnvironment(steps=1)
        )
        digest = metrics_digest(controller.run().metrics)
        assert "clean" in digest


class TestMarkdownReport:
    def _run(self):
        from repro.core import build_markdown_report

        monitor = ScriptedRole(
            [RoleResult(verdict=Verdict.FAIL, narrative="too | close")],
            name="Monitor",
            kind=RoleKind.SAFETY_MONITOR,
        )
        controller = OrchestrationController(
            [constant_generator("go"), monitor], StubEnvironment(steps=2)
        )
        return build_markdown_report(controller.run())

    def test_markdown_structure(self):
        report = self._run()
        assert report.startswith("# DURA-CPS assurance report")
        assert "## Violations" in report
        assert "| safety | 2 |" in report
        assert "## Interventions" in report

    def test_pipe_characters_escaped_in_table(self):
        report = self._run()
        # The narrative "too | close" must not break the Markdown table.
        assert "too / close" in report

    def test_markdown_telemetry_digest_fenced(self):
        from repro.core import build_markdown_report
        from repro.obs.telemetry import TelemetryRegistry

        controller = OrchestrationController(
            [constant_generator("go")], StubEnvironment(steps=1)
        )
        result = controller.run()
        registry = TelemetryRegistry()
        registry.counter("events.role_executed").inc(1)
        report = build_markdown_report(result, telemetry=registry)
        assert "## Telemetry digest" in report
        assert "```" in report
        assert "events.role_executed" in report

    def test_clean_run_markdown(self):
        from repro.core import build_markdown_report

        controller = OrchestrationController(
            [constant_generator("go")], StubEnvironment(steps=1)
        )
        report = build_markdown_report(controller.run())
        assert "None detected." in report

"""Tests for the exception hierarchy."""

import pytest

from repro.core import (
    ConfigurationError,
    DuraCPSError,
    EnvironmentInterfaceError,
    RoleExecutionError,
    SchedulingError,
    StateError,
)


class TestHierarchy:
    def test_all_derive_from_base(self):
        for exc_type in (
            ConfigurationError,
            SchedulingError,
            RoleExecutionError,
            EnvironmentInterfaceError,
            StateError,
        ):
            assert issubclass(exc_type, DuraCPSError)

    def test_scheduling_is_configuration(self):
        # A broken graph is a configuration problem; one except clause
        # should catch both.
        assert issubclass(SchedulingError, ConfigurationError)

    def test_single_clause_catches_framework_errors(self):
        with pytest.raises(DuraCPSError):
            raise StateError("missing key")

    def test_programming_errors_not_wrapped(self):
        assert not issubclass(TypeError, DuraCPSError)


class TestRoleExecutionError:
    def test_carries_role_and_cause(self):
        cause = ValueError("inner")
        error = RoleExecutionError("SafetyMonitor", cause)
        assert error.role_name == "SafetyMonitor"
        assert error.cause is cause
        assert "SafetyMonitor" in str(error)
        assert "inner" in str(error)

"""Tests for the event bus and event records."""

import pytest

from repro.core import Event, EventBus, EventKind


def event(kind=EventKind.ROLE_EXECUTED, iteration=0, time=0.0, role=None, **payload):
    return Event(kind=kind, iteration=iteration, time=time, role=role, payload=payload)


class TestPublishSubscribe:
    def test_subscribers_receive_in_order(self):
        bus = EventBus()
        received = []
        bus.subscribe(lambda e: received.append(("a", e.iteration)))
        bus.subscribe(lambda e: received.append(("b", e.iteration)))
        bus.publish(event(iteration=1))
        assert received == [("a", 1), ("b", 1)]

    def test_unsubscribe(self):
        bus = EventBus()
        received = []
        unsubscribe = bus.subscribe(received.append)
        bus.publish(event(iteration=1))
        unsubscribe()
        bus.publish(event(iteration=2))
        assert len(received) == 1

    def test_unsubscribe_twice_is_harmless(self):
        bus = EventBus()
        unsubscribe = bus.subscribe(lambda e: None)
        unsubscribe()
        unsubscribe()

    def test_subscriber_errors_propagate(self):
        bus = EventBus()

        def bad(e):
            raise RuntimeError("boom")

        bus.subscribe(bad)
        with pytest.raises(RuntimeError):
            bus.publish(event())


class TestLog:
    def test_log_records_everything(self):
        bus = EventBus()
        bus.publish(event(kind=EventKind.ITERATION_STARTED))
        bus.publish(event(kind=EventKind.VIOLATION_DETECTED))
        assert len(bus.log) == 2

    def test_events_of_kind(self):
        bus = EventBus()
        bus.publish(event(kind=EventKind.ITERATION_STARTED, iteration=0))
        bus.publish(event(kind=EventKind.VIOLATION_DETECTED, iteration=1))
        bus.publish(event(kind=EventKind.VIOLATION_DETECTED, iteration=2))
        violations = bus.events_of_kind(EventKind.VIOLATION_DETECTED)
        assert [e.iteration for e in violations] == [1, 2]

    def test_keep_log_false(self):
        bus = EventBus(keep_log=False)
        bus.publish(event())
        assert bus.log == []

    def test_clear_keeps_subscribers(self):
        bus = EventBus()
        received = []
        bus.subscribe(received.append)
        bus.publish(event())
        bus.clear()
        assert bus.log == []
        bus.publish(event())
        assert len(received) == 2

    def test_log_returns_copy(self):
        bus = EventBus()
        bus.publish(event())
        log = bus.log
        log.clear()
        assert len(bus.log) == 1


class TestLogCap:
    def test_unbounded_by_default(self):
        bus = EventBus()
        for i in range(1000):
            bus.publish(event(iteration=i))
        assert len(bus.log) == 1000
        assert bus.dropped_events == 0

    def test_max_log_keeps_newest(self):
        bus = EventBus(max_log=3)
        for i in range(5):
            bus.publish(event(iteration=i))
        assert [e.iteration for e in bus.log] == [2, 3, 4]
        assert bus.dropped_events == 2

    def test_subscribers_still_see_dropped_events(self):
        bus = EventBus(max_log=1)
        received = []
        bus.subscribe(received.append)
        for i in range(4):
            bus.publish(event(iteration=i))
        assert len(received) == 4

    def test_clear_resets_dropped_counter(self):
        bus = EventBus(max_log=1)
        bus.publish(event(iteration=0))
        bus.publish(event(iteration=1))
        assert bus.dropped_events == 1
        bus.clear()
        assert bus.dropped_events == 0
        bus.publish(event(iteration=2))
        assert len(bus.log) == 1 and bus.dropped_events == 0

    def test_invalid_max_log_rejected(self):
        with pytest.raises(ValueError):
            EventBus(max_log=0)
        with pytest.raises(ValueError):
            EventBus(max_log=-5)


class TestEventRendering:
    def test_str_includes_role(self):
        text = str(event(kind=EventKind.ROLE_EXECUTED, iteration=3, time=1.5, role="Monitor"))
        assert "it 3" in text and "Monitor" in text and "role_executed" in text

    def test_str_without_role(self):
        text = str(event(kind=EventKind.ITERATION_STARTED))
        assert "role=" not in text

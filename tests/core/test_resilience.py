"""Unit tests for the resilience primitives (config, breaker, hold)."""

from __future__ import annotations

import pytest

from repro.core import (
    ActionHold,
    BreakerState,
    CircuitBreaker,
    ConfigurationError,
    ResilienceConfig,
    ResilienceCoordinator,
    ResilienceError,
)
from repro.core.resilience import HOLD, SAFE_ACTION

from ..conftest import constant_generator


class TestResilienceConfig:
    def test_defaults_disable_everything(self):
        config = ResilienceConfig()
        assert config.deadline_ms is None
        assert config.breaker_threshold is None
        assert config.deadline_for("Generator") is None

    def test_deadline_override_per_role(self):
        config = ResilienceConfig(
            deadline_ms=100.0, role_deadlines_ms={"Generator": 40.0}
        )
        assert config.deadline_for("Generator") == 40.0
        assert config.deadline_for("SafetyMonitor") == 100.0

    def test_backoff_is_exponential(self):
        config = ResilienceConfig(retry_backoff_s=0.1)
        assert config.backoff_s(0) == pytest.approx(0.1)
        assert config.backoff_s(2) == pytest.approx(0.4)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"deadline_ms": 0.0},
            {"deadline_ms": -5.0},
            {"role_deadlines_ms": {"G": -1.0}},
            {"max_retries": -1},
            {"retry_backoff_s": -0.1},
            {"breaker_cooldown": 0},
            {"max_hold": -1},
            {
                "breaker_threshold": 0,
                "fallback": constant_generator("x", name="FB"),
            },
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResilienceConfig(**kwargs)

    def test_breaker_requires_fallback(self):
        with pytest.raises(ResilienceError):
            ResilienceConfig(breaker_threshold=3)


class TestCircuitBreaker:
    def test_opens_only_after_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=5)
        assert not breaker.record_failure(0)
        assert not breaker.record_failure(1)
        breaker.record_success()  # streak broken
        assert not breaker.record_failure(2)
        assert not breaker.record_failure(3)
        assert breaker.record_failure(4)  # third consecutive: opens
        assert breaker.state is BreakerState.OPEN
        assert breaker.entries == 1

    def test_half_opens_after_cooldown_then_closes_on_success(self):
        breaker = CircuitBreaker(threshold=1, cooldown=3)
        assert breaker.record_failure(10)
        assert breaker.use_fallback(11)
        assert breaker.use_fallback(12)
        # cooldown elapsed: probe the real role instead of the fallback
        assert not breaker.use_fallback(13)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.record_success()  # closing a half-open breaker = exit
        assert breaker.state is BreakerState.CLOSED
        assert breaker.exits == 1
        assert breaker.degraded_iterations == 2

    def test_failed_probe_reopens_without_new_entry(self):
        breaker = CircuitBreaker(threshold=1, cooldown=2)
        assert breaker.record_failure(0)
        assert not breaker.use_fallback(2)  # half-open probe
        assert not breaker.record_failure(2)  # probe failed: NOT a new entry
        assert breaker.state is BreakerState.OPEN
        assert breaker.entries == 1
        # cooldown restarts from the failed probe
        assert breaker.use_fallback(3)
        assert not breaker.use_fallback(4)

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown=5)
        breaker.record_failure(0)
        assert not breaker.record_success()  # closed -> closed: not an exit
        assert breaker.consecutive_failures == 0
        assert not breaker.record_failure(1)
        assert breaker.record_failure(2)  # second consecutive failure opens
        assert breaker.state is BreakerState.OPEN


class TestActionHold:
    def test_holds_last_action_within_budget(self):
        hold = ActionHold(max_hold=2, safe_action="SAFE")
        hold.note_executed("go")
        assert hold.fill() == ("go", HOLD)
        assert hold.fill() == ("go", HOLD)
        assert hold.fill() == ("SAFE", SAFE_ACTION)  # budget exhausted
        assert hold.total_holds == 2
        assert hold.exhausted_fills == 1

    def test_fresh_action_resets_hold_budget(self):
        hold = ActionHold(max_hold=1, safe_action="SAFE")
        hold.note_executed("a")
        assert hold.fill() == ("a", HOLD)
        hold.note_executed("b")
        assert hold.fill() == ("b", HOLD)
        assert hold.consecutive_holds == 1

    def test_no_prior_action_goes_straight_to_safe(self):
        hold = ActionHold(max_hold=3, safe_action="SAFE")
        assert hold.fill() == ("SAFE", SAFE_ACTION)

    def test_none_execution_does_not_overwrite_last(self):
        hold = ActionHold(max_hold=1, safe_action=None)
        hold.note_executed("go")
        hold.note_executed(None)
        assert hold.fill() == ("go", HOLD)


class TestResilienceCoordinator:
    def test_breaker_created_lazily_per_role(self):
        config = ResilienceConfig(
            breaker_threshold=2, fallback=constant_generator("x", name="FB")
        )
        coordinator = ResilienceCoordinator(config)
        assert coordinator.breakers == {}
        breaker = coordinator.breaker_for("Generator")
        assert breaker is coordinator.breaker_for("Generator")
        assert set(coordinator.breakers) == {"Generator"}

    def test_no_breaker_when_disabled(self):
        coordinator = ResilienceCoordinator(ResilienceConfig())
        assert coordinator.breaker_for("Generator") is None

    def test_reset_restores_pristine_state(self):
        fallback = constant_generator("x", name="FB")
        config = ResilienceConfig(breaker_threshold=1, fallback=fallback)
        coordinator = ResilienceCoordinator(config)
        coordinator.breaker_for("Generator").record_failure(0)
        coordinator.hold.note_executed("go")
        coordinator.reset()
        assert coordinator.breakers == {}
        assert coordinator.hold.last_action is None
        assert fallback.reset_count == 1

"""Tests for the StateManager blackboard."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import RoleResult, StateManager, StateError, Verdict


class TestIterationLifecycle:
    def test_begin_requires_sequential_iterations(self):
        state = StateManager()
        state.begin_iteration(0, 0.0)
        with pytest.raises(StateError):
            state.begin_iteration(2, 0.2)

    def test_begin_clears_outputs(self):
        state = StateManager()
        state.begin_iteration(0, 0.0)
        state.record_output(RoleResult(role_name="A", verdict=Verdict.PASS))
        state.begin_iteration(1, 0.1)
        assert state.output_of("A") is None

    def test_finish_archives_snapshot(self):
        state = StateManager()
        state.begin_iteration(0, 0.0)
        state.update_world_state({"x": 1})
        state.record_output(RoleResult(role_name="A", verdict=Verdict.FAIL))
        record = state.finish_iteration(executed_action="go", action_source="A")
        assert record.world_state == {"x": 1}
        assert record.outputs["A"].verdict is Verdict.FAIL
        assert record.executed_action == "go"
        assert state.history[-1] is record

    def test_reset_clears_everything(self):
        state = StateManager()
        state.begin_iteration(0, 0.0)
        state.update_world_state({"x": 1})
        state.remember("note", 42)
        state.finish_iteration(None, "")
        state.reset()
        assert state.iteration == -1
        assert state.history == []
        assert state.world("x") is None
        assert state.recall("note") is None


class TestWorldState:
    def test_update_replaces(self):
        state = StateManager()
        state.update_world_state({"a": 1})
        state.update_world_state({"b": 2})
        assert state.world("a") is None
        assert state.world("b") == 2

    def test_require_world_raises_with_available_keys(self):
        state = StateManager()
        state.update_world_state({"present": 1})
        with pytest.raises(StateError, match="present"):
            state.require_world("absent")

    def test_set_world_overwrites_single_entry(self):
        state = StateManager()
        state.update_world_state({"perception": "clean", "other": 1})
        state.set_world("perception", "faulted")
        assert state.world("perception") == "faulted"
        assert state.world("other") == 1

    def test_world_state_copy_is_isolated(self):
        state = StateManager()
        state.update_world_state({"a": 1})
        snapshot = state.world_state
        snapshot["a"] = 99
        assert state.world("a") == 1


class TestOutputs:
    def test_record_requires_role_name(self):
        state = StateManager()
        state.begin_iteration(0, 0.0)
        with pytest.raises(StateError):
            state.record_output(RoleResult())

    def test_output_of_unknown_role(self):
        state = StateManager()
        state.begin_iteration(0, 0.0)
        assert state.output_of("missing") is None

    def test_outputs_returns_copy(self):
        state = StateManager()
        state.begin_iteration(0, 0.0)
        state.record_output(RoleResult(role_name="A"))
        outputs = state.outputs
        outputs.clear()
        assert state.output_of("A") is not None


class TestHistory:
    def _run_iterations(self, state, values):
        for i, value in enumerate(values):
            state.begin_iteration(i, i * 0.1)
            state.update_world_state({"signal": value, "label": "text"})
            state.finish_iteration(None, "")

    def test_history_limit_enforced(self):
        state = StateManager(history_limit=3)
        self._run_iterations(state, [1, 2, 3, 4, 5])
        assert len(state.history) == 3
        assert state.history[0].world_state["signal"] == 3

    def test_history_signal_skips_non_numeric(self):
        state = StateManager()
        self._run_iterations(state, [1.0, 2.0])
        assert state.history_signal("signal") == [1.0, 2.0]
        assert state.history_signal("label") == []
        assert state.history_signal("missing") == []

    def test_history_signal_excludes_booleans(self):
        state = StateManager()
        state.begin_iteration(0, 0.0)
        state.update_world_state({"flag": True})
        state.finish_iteration(None, "")
        assert state.history_signal("flag") == []

    def test_recent_returns_tail(self):
        state = StateManager()
        self._run_iterations(state, [1, 2, 3])
        recent = list(state.recent(2))
        assert [r.world_state["signal"] for r in recent] == [2, 3]

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=1, max_size=30))
    def test_history_signal_round_trip(self, values):
        state = StateManager(history_limit=None)
        self._run_iterations(state, values)
        assert state.history_signal("signal") == [float(v) for v in values]


class TestScratch:
    def test_remember_persists_across_iterations(self):
        state = StateManager()
        state.begin_iteration(0, 0.0)
        state.remember("cot", "because reasons")
        state.finish_iteration(None, "")
        state.begin_iteration(1, 0.1)
        assert state.recall("cot") == "because reasons"

    def test_recall_default(self):
        assert StateManager().recall("nope", default=5) == 5

"""Tests for strict JSON serialization (no Infinity/NaN tokens, ever)."""

import json
import math
from io import StringIO

import pytest

from repro.jsonutil import dump, dumps, sanitize


class TestSanitize:
    def test_nonfinite_floats_become_none(self):
        assert sanitize(math.inf) is None
        assert sanitize(-math.inf) is None
        assert sanitize(math.nan) is None

    def test_finite_values_pass_through(self):
        assert sanitize(1.5) == 1.5
        assert sanitize(0.0) == 0.0
        assert sanitize(-7) == -7
        assert sanitize("inf") == "inf"
        assert sanitize(True) is True
        assert sanitize(None) is None

    def test_recurses_into_containers(self):
        payload = {
            "gap": math.inf,
            "runs": [1.0, math.nan, {"ttc": -math.inf}],
            "pair": (math.inf, 2.0),
        }
        assert sanitize(payload) == {
            "gap": None,
            "runs": [1.0, None, {"ttc": None}],
            "pair": [None, 2.0],  # tuples come back as lists (JSON has none)
        }

    def test_all_finite_payload_is_unchanged(self):
        payload = {"a": [1.0, 2.0], "b": {"c": 3.5}}
        assert sanitize(payload) == payload


class TestStrictDumps:
    def test_no_nonstandard_tokens_in_output(self):
        text = dumps({"gap": math.inf, "rob": math.nan, "neg": -math.inf})
        assert "Infinity" not in text
        assert "NaN" not in text
        assert json.loads(text) == {"gap": None, "rob": None, "neg": None}

    def test_dump_writes_same_bytes_as_dumps(self):
        payload = {"gap": math.inf, "ok": [1, 2.5]}
        buffer = StringIO()
        dump(payload, buffer, sort_keys=True)
        assert buffer.getvalue() == dumps(payload, sort_keys=True)

    def test_kwargs_forwarded(self):
        assert dumps({"b": 1, "a": 2}, sort_keys=True) == '{"a": 2, "b": 1}'

    def test_nonfinite_serializes_as_null_not_token(self):
        assert dumps(math.inf) == "null"
        assert dumps([math.nan]) == "[null]"

    def test_allow_nan_false_is_the_backstop(self):
        # dumps/dump pass allow_nan=False to json; a non-finite float that
        # somehow bypassed sanitization would fail loudly at the producer.
        with pytest.raises(ValueError):
            json.dumps(math.inf, allow_nan=False)

"""Tests for constant-velocity prediction, CPA and TTC."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geom import (
    KinematicState,
    Vec2,
    closest_point_of_approach,
    min_separation_over_horizon,
    path_length,
    predict_positions,
    stopping_distance,
    time_to_collision,
)


def state(px, py, vx, vy) -> KinematicState:
    return KinematicState(position=Vec2(px, py), velocity=Vec2(vx, vy))


class TestPrediction:
    def test_at_linear(self):
        s = state(1, 2, 3, -1)
        assert s.at(2.0) == Vec2(7, 0)

    def test_predict_positions_includes_t0(self):
        points = predict_positions(state(0, 0, 1, 0), horizon_s=1.0, step_s=0.5)
        assert points[0] == Vec2(0, 0)
        assert points[-1] == Vec2(1, 0)
        assert len(points) == 3

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            predict_positions(state(0, 0, 0, 0), horizon_s=-1.0)

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            predict_positions(state(0, 0, 0, 0), step_s=0.0)


class TestCPA:
    def test_head_on(self):
        a = state(0, 0, 1, 0)
        b = state(10, 0, -1, 0)
        t, d = closest_point_of_approach(a, b)
        assert t == pytest.approx(5.0)
        assert d == pytest.approx(0.0)

    def test_parallel_same_velocity(self):
        a = state(0, 0, 2, 0)
        b = state(0, 3, 2, 0)
        t, d = closest_point_of_approach(a, b)
        assert t == 0.0
        assert d == pytest.approx(3.0)

    def test_diverging_clamped_to_now(self):
        a = state(0, 0, -1, 0)
        b = state(5, 0, 1, 0)
        t, d = closest_point_of_approach(a, b)
        assert t == 0.0
        assert d == pytest.approx(5.0)

    def test_crossing_offset(self):
        # Perpendicular crossing, arriving 1 s apart at the crossing point.
        a = state(0, -10, 0, 10)  # reaches origin at t=1
        b = state(-20, 0, 10, 0)  # reaches origin at t=2
        t, d = closest_point_of_approach(a, b)
        assert 1.0 < t < 2.0
        assert 0.0 < d < 15.0


class TestTTC:
    def test_head_on_collision_time(self):
        a = state(0, 0, 5, 0)
        b = state(20, 0, -5, 0)
        ttc = time_to_collision(a, b, collision_distance=2.0)
        # Gap 20, closing at 10, contact at separation 2 -> t = 1.8.
        assert ttc == pytest.approx(1.8)

    def test_never_colliding(self):
        a = state(0, 0, 1, 0)
        b = state(0, 10, 1, 0)
        assert time_to_collision(a, b, 2.0) is None

    def test_already_within_distance(self):
        a = state(0, 0, 0, 0)
        b = state(1, 0, 0, 0)
        assert time_to_collision(a, b, 2.0) == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            time_to_collision(state(0, 0, 0, 0), state(1, 1, 0, 0), -1.0)

    def test_relative_rest_far_apart(self):
        a = state(0, 0, 3, 3)
        b = state(10, 0, 3, 3)
        assert time_to_collision(a, b, 2.0) is None


class TestMinSeparation:
    def test_clamps_to_horizon(self):
        a = state(0, 0, 1, 0)
        b = state(10, 0, -1, 0)  # CPA (contact) at t=5
        early = min_separation_over_horizon(a, b, horizon_s=1.0)
        assert early == pytest.approx(8.0)

    def test_full_horizon_reaches_cpa(self):
        a = state(0, 0, 1, 0)
        b = state(10, 0, -1, 0)
        assert min_separation_over_horizon(a, b, horizon_s=10.0) == pytest.approx(0.0)

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            min_separation_over_horizon(state(0, 0, 0, 0), state(1, 0, 0, 0), -0.1)


class TestStoppingDistance:
    def test_textbook_value(self):
        assert stopping_distance(8.0, 8.0) == pytest.approx(4.0)

    def test_zero_speed(self):
        assert stopping_distance(0.0, 5.0) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            stopping_distance(5.0, 0.0)
        with pytest.raises(ValueError):
            stopping_distance(-1.0, 5.0)


class TestPathLength:
    def test_polyline(self):
        points = [Vec2(0, 0), Vec2(3, 0), Vec2(3, 4)]
        assert path_length(points) == pytest.approx(7.0)

    def test_single_point(self):
        assert path_length([Vec2(1, 1)]) == 0.0


vel = st.floats(min_value=-20, max_value=20, allow_nan=False)
pos = st.floats(min_value=-100, max_value=100, allow_nan=False)


class TestProperties:
    @given(pos, pos, vel, vel, pos, pos, vel, vel)
    def test_cpa_is_global_minimum_on_samples(self, ax, ay, avx, avy, bx, by, bvx, bvy):
        a, b = state(ax, ay, avx, avy), state(bx, by, bvx, bvy)
        t_cpa, d_cpa = closest_point_of_approach(a, b)
        for i in range(0, 50):
            t = i * 0.2
            assert a.at(t).distance_to(b.at(t)) >= d_cpa - 1e-6

    @given(pos, pos, vel, vel, pos, pos, vel, vel,
           st.floats(min_value=0.1, max_value=5.0))
    def test_ttc_separation_matches_threshold(self, ax, ay, avx, avy, bx, by, bvx, bvy, dist):
        a, b = state(ax, ay, avx, avy), state(bx, by, bvx, bvy)
        ttc = time_to_collision(a, b, dist)
        if ttc is not None and ttc > 0.0:
            # At the returned time, separation equals the threshold.
            sep = a.at(ttc).distance_to(b.at(ttc))
            assert sep == pytest.approx(dist, rel=1e-5, abs=1e-5)

    @given(pos, pos, vel, vel, pos, pos, vel, vel,
           st.floats(min_value=0.0, max_value=10.0))
    def test_min_separation_monotonic_in_horizon(self, ax, ay, avx, avy, bx, by, bvx, bvy, h):
        a, b = state(ax, ay, avx, avy), state(bx, by, bvx, bvy)
        short = min_separation_over_horizon(a, b, horizon_s=h)
        longer = min_separation_over_horizon(a, b, horizon_s=h + 1.0)
        assert longer <= short + 1e-9

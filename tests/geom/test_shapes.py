"""Unit and property tests for footprints and overlap/gap computation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geom import (
    OBB,
    Circle,
    Vec2,
    circle_overlaps_circle,
    footprint_gap,
    obb_overlaps_circle,
    obb_overlaps_obb,
    segment_distance,
    separation_distance,
    shapes_overlap,
)


def car(x: float, y: float, heading: float = 0.0) -> OBB:
    return OBB(center=Vec2(x, y), heading=heading, half_length=2.25, half_width=1.0)


class TestOBB:
    def test_corners_count_and_distance(self):
        box = car(0, 0)
        corners = box.corners()
        assert len(corners) == 4
        for corner in corners:
            assert corner.norm() == pytest.approx(math.hypot(2.25, 1.0))

    def test_contains_center_and_edge(self):
        box = car(0, 0)
        assert box.contains(Vec2(0, 0))
        assert box.contains(Vec2(2.25, 0))
        assert not box.contains(Vec2(2.3, 0))

    def test_rotated_contains(self):
        box = car(0, 0, heading=math.pi / 2)
        assert box.contains(Vec2(0, 2.25))
        assert not box.contains(Vec2(2.25, 0))

    def test_inflated_grows_both_extents(self):
        grown = car(0, 0).inflated(0.5)
        assert grown.half_length == 2.75
        assert grown.half_width == 1.5

    def test_translated(self):
        moved = car(0, 0).translated(Vec2(1, 2))
        assert moved.center == Vec2(1, 2)

    def test_bounding_radius(self):
        assert car(0, 0).bounding_radius() == pytest.approx(math.hypot(2.25, 1.0))


class TestOverlap:
    def test_identical_boxes_overlap(self):
        assert obb_overlaps_obb(car(0, 0), car(0, 0))

    def test_adjacent_lane_pass_does_not_overlap(self):
        # Two cars side by side at 3.5 m lane spacing.
        assert not obb_overlaps_obb(car(0, 0), car(0, 3.5))

    def test_touching_edge_overlaps(self):
        assert obb_overlaps_obb(car(0, 0), car(4.5, 0))

    def test_rotated_cross_overlap(self):
        a = car(0, 0)
        b = car(0, 0, heading=math.pi / 2)
        assert obb_overlaps_obb(a, b)

    def test_diagonal_near_miss(self):
        # Corner-to-corner separation just above zero.
        a = car(0, 0)
        b = car(4.8, 2.3)
        assert not obb_overlaps_obb(a, b)

    def test_circle_obb(self):
        box = car(0, 0)
        assert obb_overlaps_circle(box, Circle(Vec2(2.5, 0), 0.3))
        assert not obb_overlaps_circle(box, Circle(Vec2(3.0, 0), 0.3))

    def test_circle_circle(self):
        assert circle_overlaps_circle(Circle(Vec2(0, 0), 1.0), Circle(Vec2(1.5, 0), 0.6))
        assert not circle_overlaps_circle(Circle(Vec2(0, 0), 1.0), Circle(Vec2(1.7, 0), 0.6))

    def test_dispatch_covers_all_pairs(self):
        box, circle = car(0, 0), Circle(Vec2(0, 0), 0.5)
        assert shapes_overlap(box, box)
        assert shapes_overlap(box, circle)
        assert shapes_overlap(circle, box)
        assert shapes_overlap(circle, circle)

    def test_dispatch_rejects_unknown(self):
        with pytest.raises(TypeError):
            shapes_overlap(car(0, 0), "not a shape")  # type: ignore[arg-type]


class TestSegmentDistance:
    def test_crossing_segments_zero(self):
        assert segment_distance(Vec2(-1, 0), Vec2(1, 0), Vec2(0, -1), Vec2(0, 1)) == 0.0

    def test_parallel_segments(self):
        d = segment_distance(Vec2(0, 0), Vec2(2, 0), Vec2(0, 1), Vec2(2, 1))
        assert d == pytest.approx(1.0)

    def test_collinear_disjoint(self):
        d = segment_distance(Vec2(0, 0), Vec2(1, 0), Vec2(3, 0), Vec2(4, 0))
        assert d == pytest.approx(2.0)

    def test_degenerate_points(self):
        d = segment_distance(Vec2(0, 0), Vec2(0, 0), Vec2(3, 4), Vec2(3, 4))
        assert d == pytest.approx(5.0)


class TestFootprintGap:
    def test_adjacent_lane_gap_exact(self):
        # 3.5 m centre spacing, 1.0 m half widths -> 1.5 m gap.
        assert footprint_gap(car(0, 0), car(0, 3.5)) == pytest.approx(1.5)

    def test_bumper_to_bumper_gap(self):
        assert footprint_gap(car(0, 0), car(6.5, 0)) == pytest.approx(2.0)

    def test_overlap_gives_zero(self):
        assert footprint_gap(car(0, 0), car(1.0, 0)) == 0.0

    def test_circle_pair(self):
        a, b = Circle(Vec2(0, 0), 1.0), Circle(Vec2(5, 0), 1.5)
        assert footprint_gap(a, b) == pytest.approx(2.5)

    def test_obb_circle(self):
        gap = footprint_gap(car(0, 0), Circle(Vec2(5, 0), 0.5))
        assert gap == pytest.approx(5 - 2.25 - 0.5)

    def test_circle_obb_argument_order(self):
        a = footprint_gap(Circle(Vec2(5, 0), 0.5), car(0, 0))
        b = footprint_gap(car(0, 0), Circle(Vec2(5, 0), 0.5))
        assert a == pytest.approx(b)


coords = st.floats(min_value=-50, max_value=50, allow_nan=False)
headings = st.floats(min_value=-math.pi, max_value=math.pi, allow_nan=False)


class TestProperties:
    @given(coords, coords, headings, coords, coords, headings)
    def test_overlap_symmetric(self, ax, ay, ah, bx, by, bh):
        a, b = car(ax, ay, ah), car(bx, by, bh)
        assert obb_overlaps_obb(a, b) == obb_overlaps_obb(b, a)

    @given(coords, coords, headings, coords, coords, headings)
    def test_gap_symmetric(self, ax, ay, ah, bx, by, bh):
        a, b = car(ax, ay, ah), car(bx, by, bh)
        assert footprint_gap(a, b) == pytest.approx(footprint_gap(b, a), abs=1e-9)

    @given(coords, coords, headings, coords, coords, headings)
    def test_gap_zero_iff_overlap(self, ax, ay, ah, bx, by, bh):
        a, b = car(ax, ay, ah), car(bx, by, bh)
        if shapes_overlap(a, b):
            assert footprint_gap(a, b) == 0.0
        else:
            assert footprint_gap(a, b) > 0.0

    @given(coords, coords, headings, coords, coords, headings)
    def test_quick_bound_never_exceeds_exact_gap(self, ax, ay, ah, bx, by, bh):
        a, b = car(ax, ay, ah), car(bx, by, bh)
        assert separation_distance(a, b) <= footprint_gap(a, b) + 1e-9

    @given(coords, coords, headings)
    def test_box_contains_all_its_corners(self, x, y, h):
        box = car(x, y, h)
        for corner in box.corners():
            assert box.contains(corner)

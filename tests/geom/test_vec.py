"""Unit and property tests for the Vec2 value type."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geom import Vec2, angle_difference

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)
angles = st.floats(min_value=-10.0, max_value=10.0, allow_nan=False)


class TestAlgebra:
    def test_addition_and_subtraction(self):
        assert Vec2(1, 2) + Vec2(3, -1) == Vec2(4, 1)
        assert Vec2(1, 2) - Vec2(3, -1) == Vec2(-2, 3)

    def test_scalar_multiplication_commutes(self):
        assert 2 * Vec2(1.5, -2.0) == Vec2(1.5, -2.0) * 2 == Vec2(3.0, -4.0)

    def test_division(self):
        assert Vec2(4, 6) / 2 == Vec2(2, 3)

    def test_negation(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_unpacking_and_indexing(self):
        x, y = Vec2(3, 4)
        assert (x, y) == (3, 4)
        assert Vec2(3, 4)[0] == 3 and Vec2(3, 4)[1] == 4

    def test_as_tuple(self):
        assert Vec2(1.5, 2.5).as_tuple() == (1.5, 2.5)


class TestNormsAndProducts:
    def test_norm_is_euclidean(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)
        assert abs(Vec2(3, 4)) == pytest.approx(5.0)

    def test_norm_sq_avoids_sqrt(self):
        assert Vec2(3, 4).norm_sq() == pytest.approx(25.0)

    def test_dot_orthogonal(self):
        assert Vec2(1, 0).dot(Vec2(0, 5)) == 0.0

    def test_cross_sign_is_orientation(self):
        assert Vec2(1, 0).cross(Vec2(0, 1)) > 0  # CCW
        assert Vec2(0, 1).cross(Vec2(1, 0)) < 0  # CW

    def test_normalized_unit_length(self):
        n = Vec2(3, 4).normalized()
        assert n.norm() == pytest.approx(1.0)
        assert n.x == pytest.approx(0.6)

    def test_normalize_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec2.zero().normalized()


class TestGeometry:
    def test_from_polar_round_trip(self):
        v = Vec2.from_polar(2.0, math.pi / 3)
        assert v.norm() == pytest.approx(2.0)
        assert v.angle() == pytest.approx(math.pi / 3)

    def test_rotation_by_quarter_turn(self):
        assert Vec2(1, 0).rotated(math.pi / 2).is_close(Vec2(0, 1), tol=1e-12)

    def test_perpendicular_is_ccw_quarter_turn(self):
        assert Vec2(1, 0).perpendicular() == Vec2(0, 1)

    def test_projection_onto_axis(self):
        p = Vec2(3, 4).projected_onto(Vec2(1, 0))
        assert p == Vec2(3, 0)

    def test_projection_onto_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec2(1, 1).projected_onto(Vec2.zero())

    def test_lerp_endpoints_and_midpoint(self):
        a, b = Vec2(0, 0), Vec2(2, 4)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Vec2(1, 2)

    def test_distance_to(self):
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == pytest.approx(5.0)


class TestProperties:
    @given(finite, finite, finite, finite)
    def test_addition_commutes(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert (a + b).is_close(b + a)

    @given(finite, finite)
    def test_rotation_preserves_norm(self, x, y):
        v = Vec2(x, y)
        assert v.rotated(1.234).norm() == pytest.approx(v.norm(), rel=1e-9, abs=1e-6)

    @given(finite, finite, finite, finite)
    def test_triangle_inequality(self, ax, ay, bx, by):
        a, b = Vec2(ax, ay), Vec2(bx, by)
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(angles, angles)
    def test_angle_difference_in_range(self, a, b):
        d = angle_difference(a, b)
        assert -math.pi <= d <= math.pi

    @given(angles, angles)
    def test_angle_difference_consistent(self, a, b):
        d = angle_difference(a, b)
        # Rotating b by d lands on a modulo full turns.
        assert math.isclose(
            math.cos(b + d), math.cos(a), abs_tol=1e-9
        ) and math.isclose(math.sin(b + d), math.sin(a), abs_tol=1e-9)

    @given(finite, finite)
    def test_dot_with_perpendicular_is_zero(self, x, y):
        v = Vec2(x, y)
        assert v.dot(v.perpendicular()) == pytest.approx(0.0, abs=1e-3)

"""Smoke tests: the runnable examples must stay runnable.

Only the seconds-scale examples run here; the campaign-scale ones
(`intersection_case_study`, `attack_campaign`, `custom_role`) are exercised
through the experiment modules they wrap.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "0")
        assert "assurance report" in out
        assert "TL;DR" in out
        assert "ghost_obstacle_attack" in out

    def test_stl_monitoring(self):
        out = run_example("stl_monitoring.py")
        assert "Online STL monitoring" in out
        assert "rho=" in out

    def test_config_driven(self):
        out = run_example("config_driven.py")
        assert "execution order" in out
        assert "STLMonitor" in out

    def test_process_control_second_domain(self):
        out = run_example("process_control.py", "0")
        assert "Water-tank assurance report" in out
        assert "sensor_bias" in out  # the domain-specific fault fired

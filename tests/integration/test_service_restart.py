"""Kill-and-restart integration test for the assurance service.

A server is started as a real subprocess, a campaign job is submitted
over HTTP, and the server is SIGKILLed once the job's engine journal
shows settled runs.  A second server over the same root must re-queue
the orphaned job, resume it from the journal, and produce a final
``report.json`` byte-identical to an uninterrupted in-process run of
the same spec — the service's core durability contract.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.experiments.campaign import (
    CampaignOptions,
    execute_suite,
    write_campaign_report,
)
from repro.service import ServiceClient
from repro.sim.scenario import ScenarioType

SPEC = {"scenarios": ["nominal"], "seed_count": 4}
SEEDS = tuple(range(4))


def _env():
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _start_server(root: Path) -> "tuple[subprocess.Popen, str]":
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.service", "serve",
            "--root", str(root), "--port", "0", "--workers", "1",
            "--log-level", "WARNING",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
        text=True,
        env=_env(),
    )
    line = proc.stdout.readline()
    assert line.startswith("serving on "), f"unexpected server banner: {line!r}"
    url = line.split()[2]
    return proc, url


def _wait_journal_progress(journal: Path, min_tasks: int, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if journal.exists():
            tasks = [
                line
                for line in journal.read_text().splitlines()
                if '"kind": "task"' in line or '"kind":"task"' in line
            ]
            if len(tasks) >= min_tasks:
                return len(tasks)
        time.sleep(0.05)
    raise AssertionError(f"journal {journal} never reached {min_tasks} tasks")


@pytest.mark.slow
def test_sigkill_midjob_restart_resumes_byte_identical(tmp_path):
    root = tmp_path / "service-root"

    # ------------------------------------------------ first server: kill it
    proc, url = _start_server(root)
    try:
        client = ServiceClient(url, timeout=30.0)
        record = client.submit("campaign", SPEC)
        job_id = record["id"]
        journal = root / "jobs" / job_id / "journal.jsonl"
        settled_before_kill = _wait_journal_progress(journal, min_tasks=1)
    finally:
        proc.kill()  # SIGKILL: no shutdown hooks, no journal flushing help
        proc.wait(timeout=10)

    # The job is orphaned mid-flight on disk.
    state = json.loads((root / "jobs" / job_id / "state.json").read_text())
    assert state["state"] in ("running", "queued")

    # ------------------------------------------------ second server: resume
    proc, url = _start_server(root)
    try:
        client = ServiceClient(url, timeout=30.0)
        final = client.wait(job_id, timeout=180.0)
        assert final["state"] == "done", final
        assert final["recovered"] >= 1
        body = client.results(job_id)
        assert body["report"]["total_runs"] == len(SEEDS)
        # The resumed run replayed at least the pre-kill settled tasks.
        assert body["result"]["resumed"] >= min(settled_before_kill, 1)
        event_kinds = {
            e["kind"] for e in client.watch(job_id, wait=1.0)
        }
        assert "job_recovered" in event_kinds
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)

    service_report = (root / "jobs" / job_id / "report.json").read_bytes()

    # ------------------------------------------------ uninterrupted baseline
    options = CampaignOptions.from_dict(SPEC.get("options"))
    results, _ = execute_suite(
        (ScenarioType.NOMINAL,), SEEDS, options, jobs=1, progress=None
    )
    baseline = write_campaign_report(results, tmp_path / "baseline.json", options)
    assert baseline.read_bytes() == service_report


@pytest.mark.slow
def test_cli_submit_wait_status_results(tmp_path):
    root = tmp_path / "service-root"
    proc, url = _start_server(root)
    try:
        run = subprocess.run(
            [
                sys.executable, "-m", "repro.service", "submit",
                "--url", url, "--kind", "campaign",
                "--spec", json.dumps({"scenarios": ["nominal"], "seed_count": 1}),
                "--wait", "--timeout", "120",
            ],
            capture_output=True, text=True, env=_env(), timeout=150,
        )
        assert run.returncode == 0, run.stderr
        job_id = run.stdout.splitlines()[0].strip()

        status = subprocess.run(
            [sys.executable, "-m", "repro.service", "status", "--url", url],
            capture_output=True, text=True, env=_env(), timeout=30,
        )
        assert job_id in status.stdout
        assert "done" in status.stdout

        results = subprocess.run(
            [
                sys.executable, "-m", "repro.service", "results",
                "--url", url, job_id,
            ],
            capture_output=True, text=True, env=_env(), timeout=30,
        )
        assert results.returncode == 0
        body = json.loads(results.stdout)
        assert body["report"]["total_runs"] == 1

        # The service.json discovery file lets clients use --root instead.
        service_file = json.loads((root / "service.json").read_text())
        assert service_file["url"] == url

        # obs summarize self-certifies the job's trace directory.
        summarize = subprocess.run(
            [
                sys.executable, "-m", "repro.obs", "summarize",
                str(root / "jobs" / job_id),
            ],
            capture_output=True, text=True, env=_env(), timeout=60,
        )
        assert summarize.returncode == 0, summarize.stdout + summarize.stderr
    finally:
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=30)

"""Integration tests: the full assurance loop end to end."""

import pytest

from repro.core import EventKind, Verdict
from repro.experiments import CampaignOptions, build_controller, run_once
from repro.sim import Maneuver, ScenarioType, build_scenario


class TestScenarioSmoke:
    @pytest.mark.parametrize("scenario", list(ScenarioType))
    def test_every_scenario_completes(self, scenario):
        outcome = run_once(scenario, seed=0)
        assert outcome.iterations > 10
        # A run ends by clearing, colliding or timing out — never hangs.
        assert outcome.cleared or outcome.collision or outcome.timed_out


class TestPaperWorkflow:
    def test_nominal_run_is_clean_and_quick(self):
        outcome = run_once(ScenarioType.NOMINAL, seed=1)
        assert not outcome.collision
        assert outcome.clearance_time is not None
        assert outcome.clearance_time < 12.0

    def test_ghost_attack_triggers_monitor_and_slows_crossing(self):
        nominal = run_once(ScenarioType.NOMINAL, seed=1)
        ghost = run_once(ScenarioType.GHOST_ATTACK, seed=1)
        assert ghost.monitor_flagged
        assert ghost.faults_injected > 0
        if ghost.clearance_time is not None and nominal.clearance_time is not None:
            assert ghost.clearance_time > nominal.clearance_time

    def test_attack_chain_security_to_injector_to_generator(self):
        controller = build_controller(build_scenario(ScenarioType.GHOST_ATTACK, 0))
        controller.run()
        # Evidence trail: faults were injected and the monitor reacted.
        assert controller.events.events_of_kind(EventKind.VIOLATION_DETECTED)
        faults = controller.metrics.faults
        assert faults and all(f.kind == "ghost_obstacle" for f in faults)

    def test_recovery_override_uses_emergency_brake(self):
        controller = build_controller(build_scenario(ScenarioType.GHOST_ATTACK, 0))
        controller.run()
        recoveries = controller.events.events_of_kind(EventKind.RECOVERY_ACTIVATED)
        assert recoveries
        assert all(e.payload["action"] == Maneuver.EMERGENCY_BRAKE.value for e in recoveries)

    def test_history_carries_cot_explanations(self):
        controller = build_controller(build_scenario(ScenarioType.NOMINAL, 0))
        controller.run()
        assert isinstance(controller.state.recall("last_explanation"), str)
        record = controller.state.history[-1]
        assert record.outputs["Generator"].narrative


class TestDeterminismEndToEnd:
    def test_full_loop_reproducible(self):
        import dataclasses

        a = run_once(ScenarioType.SPOOF_ATTACK, seed=4)
        b = run_once(ScenarioType.SPOOF_ATTACK, seed=4)
        assert dataclasses.replace(a, wall_time_s=0.0) == dataclasses.replace(b, wall_time_s=0.0)

    def test_metrics_reproducible(self):
        ca = build_controller(build_scenario(ScenarioType.CONFLICTING, 2))
        cb = build_controller(build_scenario(ScenarioType.CONFLICTING, 2))
        ra, rb = ca.run(), cb.run()
        assert ra.metrics.violation_counts == rb.metrics.violation_counts
        assert ra.iterations == rb.iterations


class TestAblationsEndToEnd:
    def test_no_recovery_never_activates(self):
        outcome = run_once(ScenarioType.GHOST_ATTACK, 0, CampaignOptions(use_recovery=False))
        assert outcome.recovery_activations == 0

    def test_rule_planner_handles_ghost_without_panic_flags(self):
        llm = run_once(ScenarioType.GHOST_ATTACK, 0, CampaignOptions(planner="llm"))
        rule = run_once(ScenarioType.GHOST_ATTACK, 0, CampaignOptions(planner="rule"))
        # The baseline stops deliberately instead of slamming the brakes,
        # so it accumulates no more flags than the LLM.
        assert rule.safety_flag_count <= llm.safety_flag_count

    def test_monitor_horizon_shapes_flag_counts(self):
        short = run_once(
            ScenarioType.GHOST_ATTACK, 0, CampaignOptions(monitor_horizon_s=0.5)
        )
        long = run_once(
            ScenarioType.GHOST_ATTACK, 0, CampaignOptions(monitor_horizon_s=3.0)
        )
        assert long.safety_flag_count >= short.safety_flag_count


class TestSTLMonitorInLoop:
    def test_stl_monitor_can_replace_geometric(self):
        from repro.core import OrchestrationController, OrchestratorConfig, RoleGraph
        from repro.env import IntersectionSimInterface
        from repro.roles import (
            EmergencyBrakeRecovery,
            LLMGeneratorRole,
            STLSafetyMonitor,
        )

        spec = build_scenario(ScenarioType.NOMINAL, 0)
        env = IntersectionSimInterface(spec)
        roles = [
            LLMGeneratorRole(name="Generator"),
            STLSafetyMonitor(name="SafetyMonitor"),
            EmergencyBrakeRecovery(name="RecoveryPlanner"),
        ]
        controller = OrchestrationController(
            RoleGraph.sequential(roles), env, OrchestratorConfig(max_iterations=200)
        )
        result = controller.run()
        assert result.iterations > 10
        monitor_results = [
            record.outputs["SafetyMonitor"].verdict for record in controller.state.history
        ]
        assert Verdict.PASS in monitor_results

"""Tests for ``python -m repro.search`` and the obs summarize audit."""

import json
import shutil

import pytest

from repro.obs.cli import main as obs_main
from repro.search import CORPUS_FILE_NAME, SEARCH_TRACE_NAME
from repro.search.cli import main as search_main


class TestSpacesAndCover:
    def test_spaces_lists_families(self, capsys):
        assert search_main(["spaces"]) == 0
        out = capsys.readouterr().out
        for family in ("pedestrian", "ghost", "crossing"):
            assert family in out

    def test_cover_accepts_directory(self, falsify_run, capsys):
        _, out_dir = falsify_run
        assert search_main(["cover", str(out_dir)]) == 0
        out = capsys.readouterr().out
        assert "cells occupied" in out or "coverage" in out

    def test_cover_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            search_main(["cover", str(tmp_path / "nope.json")])


class TestReplay:
    def test_replay_is_exact(self, falsify_run, capsys):
        _, out_dir = falsify_run
        assert search_main(["replay", str(out_dir / CORPUS_FILE_NAME)]) == 0
        out = capsys.readouterr().out
        assert "replayed search-pedestrian-0" in out

    def test_replay_report_sections(self, falsify_run, capsys):
        _, out_dir = falsify_run
        code = search_main(
            ["replay", str(out_dir / CORPUS_FILE_NAME), "--report"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "STL properties" in out
        assert "Counterexamples (scenario search)" in out

    def test_replay_unknown_index(self, falsify_run):
        _, out_dir = falsify_run
        code = search_main(
            ["replay", str(out_dir / CORPUS_FILE_NAME), "--index", "99"]
        )
        assert code == 1

    def test_replay_empty_corpus(self, tmp_path):
        empty = tmp_path / CORPUS_FILE_NAME
        empty.write_text("")
        assert search_main(["replay", str(empty)]) == 1


class TestExplore:
    def test_explore_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "explore"
        code = search_main(
            [
                "explore",
                "--family",
                "pedestrian",
                "--budget",
                "3",
                "--sampler",
                "uniform",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        assert (out_dir / "coverage.json").exists()
        assert (out_dir / SEARCH_TRACE_NAME).exists()
        assert "coverage:" in capsys.readouterr().out


class TestSummarizeAudit:
    def test_search_out_dir_is_consistent(self, falsify_run, capsys):
        _, out_dir = falsify_run
        assert obs_main(["summarize", str(out_dir), "--no-timing"]) == 0
        out = capsys.readouterr().out
        assert "search" in out
        assert "counterexamples=" in out

    def test_tampered_footer_fails(self, falsify_run, tmp_path, capsys):
        _, out_dir = falsify_run
        tampered = tmp_path / "tampered"
        tampered.mkdir()
        shutil.copy(out_dir / SEARCH_TRACE_NAME, tampered / SEARCH_TRACE_NAME)
        path = tampered / SEARCH_TRACE_NAME
        lines = path.read_text().splitlines()
        footer = json.loads(lines[-1])
        footer["search_summary"]["evaluations"] += 1
        lines[-1] = json.dumps(footer, sort_keys=True)
        path.write_text("\n".join(lines) + "\n")
        assert obs_main(["summarize", str(tampered), "--no-timing"]) == 1
        assert "MISMATCH" in capsys.readouterr().out

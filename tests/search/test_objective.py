"""Tests for the STL-robustness objective layer."""

import pytest

from repro.experiments.campaign import CampaignOptions
from repro.search.objective import (
    Evaluation,
    candidate_key,
    decode_evaluation,
    encode_evaluation,
    evaluate_spec,
    execute_search_block,
    execute_search_unit,
    run_spec,
    search_unit,
)
from repro.search.space import get_space


@pytest.fixture(scope="module")
def nominal_evaluation():
    space = get_space("pedestrian")
    params = space.nominal_params()
    spec = space.to_spec(params, seed=0)
    return evaluate_spec(
        "test:nominal", "pedestrian", params, spec, CampaignOptions()
    )


class TestEvaluateSpec:
    def test_fields(self, nominal_evaluation):
        e = nominal_evaluation
        assert e.key == "test:nominal"
        assert e.family == "pedestrian"
        assert e.iterations > 0
        assert isinstance(e.robustness, float)
        assert e.falsified == (e.robustness < 0.0)

    def test_deterministic(self, nominal_evaluation):
        space = get_space("pedestrian")
        params = space.nominal_params()
        again = evaluate_spec(
            "test:nominal",
            "pedestrian",
            params,
            space.to_spec(params, seed=0),
            CampaignOptions(),
        )
        assert again == nominal_evaluation

    def test_run_spec_returns_frames(self):
        space = get_space("pedestrian")
        spec = space.to_spec(space.nominal_params(), seed=0)
        result, frames = run_spec(spec, CampaignOptions())
        assert result.iterations == len(frames) > 0
        assert "min_separation" in frames[0].world


class TestWorkerPayload:
    def test_execute_search_unit_matches_direct(self, nominal_evaluation):
        space = get_space("pedestrian")
        params = space.nominal_params()
        unit = search_unit(
            "test:nominal", "pedestrian", params, 0, CampaignOptions()
        )
        assert execute_search_unit(unit.payload) == nominal_evaluation

    def test_encode_decode_round_trip(self, nominal_evaluation):
        data = encode_evaluation(nominal_evaluation)
        assert decode_evaluation(data) == nominal_evaluation
        assert isinstance(data["params"], dict)

    def test_execute_search_block_matches_per_unit(self):
        """The batched-STL block worker is bit-identical to per-unit scoring."""
        space = get_space("pedestrian")
        payloads = []
        for i, seed in enumerate((0, 1, 2)):
            params = space.nominal_params()
            unit = search_unit(
                f"test:block:{i}", "pedestrian", params, seed, CampaignOptions()
            )
            payloads.append(unit.payload)
        batched = execute_search_block(payloads)
        per_unit = [execute_search_unit(p) for p in payloads]
        assert batched == per_unit
        assert execute_search_block.__block_worker__ is True


class TestCandidateKey:
    def test_ordinal_distinguishes_repeats(self):
        space = get_space("ghost")
        params = space.nominal_params()
        a = candidate_key("ghost", 0, 1, params)
        b = candidate_key("ghost", 0, 2, params)
        assert a != b

    def test_params_change_fingerprint(self):
        space = get_space("ghost")
        params = space.nominal_params()
        a = candidate_key("ghost", 0, 1, params)
        params["attack_intensity"] = 0.9
        b = candidate_key("ghost", 0, 1, params)
        assert a != b

"""Shared fixtures for the scenario-search tests.

One real falsification run (pedestrian family, budget 12, seed 0) is
expensive enough that the driver and CLI tests share a single
session-scoped pass instead of each paying for their own.
"""

from __future__ import annotations

import pytest

from repro.search import SearchConfig, SearchDriver


@pytest.fixture(scope="session")
def falsify_run(tmp_path_factory):
    """(SearchResult, out_dir) of one serial pedestrian falsification."""
    out_dir = tmp_path_factory.mktemp("falsify") / "out"
    config = SearchConfig(family="pedestrian", mode="falsify", seed=0, budget=12)
    driver = SearchDriver(config, out_dir=out_dir, progress=None)
    return driver.run(), out_dir

"""Tests for the declarative scenario parameter spaces."""

import random

import pytest

from repro.search.space import (
    Dimension,
    SPACES,
    as_bool,
    get_space,
    known_families,
)
from repro.sim import ScenarioSpec


class TestDimension:
    def test_validates_bounds(self):
        with pytest.raises(ValueError):
            Dimension(name="x", lo=1.0, hi=0.0, nominal=0.5)

    def test_nominal_inside_bounds(self):
        with pytest.raises(ValueError):
            Dimension(name="x", lo=0.0, hi=1.0, nominal=2.0)

    def test_clip(self):
        d = Dimension(name="x", lo=0.0, hi=1.0, nominal=0.5)
        assert d.clip(-3.0) == 0.0
        assert d.clip(3.0) == 1.0
        assert d.clip(0.25) == 0.25

    def test_seed_reachable_window(self):
        d = Dimension(
            name="x", lo=0.0, hi=10.0, nominal=5.0, seed_lo=4.0, seed_hi=6.0
        )
        assert d.seed_reachable(5.0)
        assert not d.seed_reachable(3.0)

    def test_no_window_means_reachable(self):
        d = Dimension(name="x", lo=0.0, hi=10.0, nominal=5.0)
        assert d.seed_reachable(9.9)


class TestSpaces:
    def test_families_registered(self):
        assert known_families() == sorted(SPACES)
        assert {"pedestrian", "ghost", "crossing"} <= set(known_families())

    def test_unknown_family_lists_known(self):
        with pytest.raises(ValueError) as excinfo:
            get_space("nope")
        message = str(excinfo.value)
        for family in known_families():
            assert family in message

    @pytest.mark.parametrize("family", known_families())
    def test_nominal_builds_spec(self, family):
        space = get_space(family)
        params = space.nominal_params()
        spec = space.to_spec(params, seed=0)
        assert isinstance(spec, ScenarioSpec)
        assert spec.scenario_type is space.scenario_type

    @pytest.mark.parametrize("family", known_families())
    def test_to_spec_rejects_out_of_bounds(self, family):
        space = get_space(family)
        params = space.nominal_params()
        name = space.names()[0]
        params[name] = space.dimension(name).hi + 1.0
        with pytest.raises(ValueError):
            space.to_spec(params, seed=0)

    @pytest.mark.parametrize("family", known_families())
    def test_nominal_is_seed_reachable(self, family):
        space = get_space(family)
        assert space.seed_reachable(space.nominal_params())

    def test_pedestrian_coupling(self):
        space = get_space("pedestrian")
        params = space.nominal_params()
        # West-side nominal start is inside the builder's jitter window...
        assert space.seed_reachable(params)
        # ...but the same start from the east is not a seed-reachable combo.
        params["from_east"] = 1.0
        assert not space.seed_reachable(params)


class TestSamplers:
    def test_uniform_deterministic(self):
        space = get_space("ghost")
        a = space.sample_uniform(random.Random(7))
        b = space.sample_uniform(random.Random(7))
        assert a == b
        space.validate(a)

    def test_lhs_deterministic_and_in_bounds(self):
        space = get_space("crossing")
        a = space.sample_lhs(random.Random(3), 8)
        b = space.sample_lhs(random.Random(3), 8)
        assert a == b
        assert len(a) == 8
        for params in a:
            space.validate(params)

    def test_lhs_stratifies_floats(self):
        space = get_space("pedestrian")
        count = 6
        samples = space.sample_lhs(random.Random(1), count)
        d = space.dimension("ped_speed")
        strata = sorted(
            int((p["ped_speed"] - d.lo) / (d.hi - d.lo) * count)
            for p in samples
        )
        # One sample per stratum: that is the Latin-hypercube property.
        assert strata == list(range(count))

    def test_grid_counts_and_limit(self):
        space = get_space("pedestrian")
        points = space.sample_grid(2)
        # 5 float dims at 2 points each, 1 bool dim at 2 values.
        assert len(points) == 2**6
        for params in points:
            space.validate(params)

    def test_mutate_clips_and_is_local(self):
        space = get_space("ghost")
        rng = random.Random(11)
        base = space.nominal_params()
        for _ in range(50):
            mutant = space.mutate(base, rng, scale=0.3)
            space.validate(mutant)
            changed = [k for k in base if mutant[k] != base[k]]
            assert 1 <= len(changed) <= 2

    def test_as_bool_threshold(self):
        assert as_bool(1.0) and as_bool(0.5)
        assert not as_bool(0.49)

"""Tests for the search driver: falsification, determinism, resume."""

import json
import shutil

from repro.search import (
    CORPUS_FILE_NAME,
    COVERAGE_FILE_NAME,
    SEARCH_JOURNAL_NAME,
    SEARCH_TRACE_NAME,
    SearchConfig,
    SearchDriver,
    load_corpus,
    load_coverage,
)

ARTIFACTS = (CORPUS_FILE_NAME, COVERAGE_FILE_NAME, SEARCH_TRACE_NAME, "summary.json")


class TestFalsify:
    def test_finds_counterexample(self, falsify_run):
        result, _ = falsify_run
        assert result.counterexamples
        entry = result.counterexamples[0]
        assert entry.robustness < 0.0
        assert entry.minimized_robustness < 0.0
        assert result.best_robustness is not None
        assert result.best_robustness < 0.0

    def test_minimization_reverts_toward_nominal(self, falsify_run):
        result, _ = falsify_run
        entry = result.counterexamples[0]
        assert entry.reverted_dims
        assert entry.minimized_params != entry.params
        # The minimized counterexample lies outside the default jitter of
        # the seed builders: the search found something the six seed
        # scenarios could not produce.
        assert entry.outside_default_jitter

    def test_budget_respected_by_search_phase(self, falsify_run):
        result, _ = falsify_run
        # Minimization probes legitimately exceed the sampling budget;
        # the trace distinguishes candidates (sampled) from evaluations.
        assert len(result.evaluations) >= result.config.budget

    def test_coverage_tracks_all_evaluations(self, falsify_run):
        result, _ = falsify_run
        total = sum(
            cell["count"] for cell in result.coverage.to_payload()["cells"].values()
        )
        assert total == len(result.evaluations)
        assert 0 < result.coverage.occupied <= result.coverage.total_cells

    def test_artifacts_round_trip(self, falsify_run):
        result, out_dir = falsify_run
        corpus = load_corpus(out_dir / CORPUS_FILE_NAME)
        assert [e.to_dict() for e in corpus] == [
            e.to_dict() for e in result.counterexamples
        ]
        coverage = load_coverage(out_dir / COVERAGE_FILE_NAME)
        assert coverage.to_payload() == result.coverage.to_payload()
        summary = json.loads((out_dir / "summary.json").read_text())
        assert summary["counterexamples"] == len(result.counterexamples)
        assert summary["evaluations"] == len(result.evaluations)


class TestDeterminism:
    def test_jobs_do_not_change_artifacts(self, falsify_run, tmp_path):
        _, serial_dir = falsify_run
        out_dir = tmp_path / "jobs2"
        config = SearchConfig(
            family="pedestrian", mode="falsify", seed=0, budget=12, jobs=2
        )
        SearchDriver(config, out_dir=out_dir, progress=None).run()
        for name in ARTIFACTS:
            assert (out_dir / name).read_bytes() == (
                serial_dir / name
            ).read_bytes(), f"{name} differs between jobs=1 and jobs=2"

    def test_block_size_does_not_change_artifacts(self, falsify_run, tmp_path):
        _, serial_dir = falsify_run
        out_dir = tmp_path / "blocks"
        config = SearchConfig(
            family="pedestrian", mode="falsify", seed=0, budget=12, block_size=3
        )
        SearchDriver(config, out_dir=out_dir, progress=None).run()
        for name in ARTIFACTS:
            assert (out_dir / name).read_bytes() == (
                serial_dir / name
            ).read_bytes(), f"{name} differs between block_size=1 and block_size=3"

    def test_resume_replays_journal(self, falsify_run, tmp_path):
        result, serial_dir = falsify_run
        out_dir = tmp_path / "resumed"
        shutil.copytree(serial_dir, out_dir)
        journal_before = (out_dir / SEARCH_JOURNAL_NAME).read_bytes()
        config = SearchConfig(family="pedestrian", mode="falsify", seed=0, budget=12)
        resumed = SearchDriver(
            config, out_dir=out_dir, resume=True, progress=None
        ).run()
        assert (out_dir / SEARCH_JOURNAL_NAME).read_bytes() == journal_before
        assert resumed.evaluations == result.evaluations
        for name in ARTIFACTS:
            assert (out_dir / name).read_bytes() == (serial_dir / name).read_bytes()

    def test_fresh_start_discards_stale_journal(self, tmp_path):
        out_dir = tmp_path / "fresh"
        out_dir.mkdir()
        (out_dir / SEARCH_JOURNAL_NAME).write_text('{"not": "a journal"}\n')
        config = SearchConfig(family="pedestrian", mode="explore", seed=1, budget=2)
        result = SearchDriver(config, out_dir=out_dir, progress=None).run()
        assert len(result.evaluations) == 2


class TestTrace:
    def test_search_trace_self_certifies(self, falsify_run):
        from repro.obs.trace import load_trace, recompute_search_counts, verify_search_trace

        _, out_dir = falsify_run
        trace = load_trace(out_dir / SEARCH_TRACE_NAME)
        consistent, mismatches = verify_search_trace(trace)
        assert consistent and mismatches == []
        counts = recompute_search_counts(trace)
        assert counts["counterexamples"] >= 1
        assert counts["evaluations"] > counts["candidates"] > 0

"""Tests for the job model: specs, the lifecycle state machine, kinds."""

import pytest

from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    InvalidTransition,
    JobRecord,
    JobSpec,
    get_job_kind,
    known_job_kinds,
)
from repro.service.jobs import (
    validate_campaign_spec,
    validate_falsify_spec,
    validate_replay_spec,
)


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(kind="campaign", spec={"seed_count": 3}, priority=5, jobs=2)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_defaults(self):
        spec = JobSpec.from_dict({"kind": "campaign"})
        assert spec.spec == {}
        assert spec.priority == 0
        assert spec.jobs == 1

    def test_missing_kind_raises(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec.from_dict({"spec": {}})

    def test_unknown_field_raises(self):
        with pytest.raises(ValueError, match="unknown job field"):
            JobSpec.from_dict({"kind": "campaign", "prio": 1})

    def test_non_dict_spec_raises(self):
        with pytest.raises(ValueError, match="object"):
            JobSpec.from_dict({"kind": "campaign", "spec": [1, 2]})

    def test_zero_jobs_raises(self):
        with pytest.raises(ValueError, match="jobs"):
            JobSpec(kind="campaign", jobs=0)

    def test_validate_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            JobSpec(kind="mystery").validate()

    def test_builtin_kinds_registered(self):
        assert {"campaign", "falsify", "replay"} <= set(known_job_kinds())
        assert get_job_kind("campaign").validate is not None


class TestLifecycle:
    def _record(self):
        return JobRecord(id="j000001", seq=1, spec=JobSpec(kind="campaign"))

    def test_happy_path(self):
        record = self._record()
        assert record.state == QUEUED
        record.transition(RUNNING)
        record.transition(DONE, result={"ok": True})
        assert record.terminal
        assert record.result == {"ok": True}
        assert [t["state"] for t in record.transitions] == [RUNNING, DONE]

    def test_failure_records_error(self):
        record = self._record()
        record.transition(RUNNING)
        record.transition(FAILED, error="RuntimeError: boom")
        assert record.error == "RuntimeError: boom"

    def test_recovery_edge_counts(self):
        record = self._record()
        record.transition(RUNNING)
        record.transition(QUEUED)
        assert record.recovered == 1
        record.transition(RUNNING)
        record.transition(DONE)

    def test_terminal_states_reject_transitions(self):
        for terminal in (DONE, FAILED, CANCELLED):
            record = self._record()
            record.transition(RUNNING)
            record.transition(terminal)
            with pytest.raises(InvalidTransition):
                record.transition(RUNNING)

    def test_queued_cannot_complete_directly(self):
        record = self._record()
        with pytest.raises(InvalidTransition):
            record.transition(DONE)

    def test_unknown_state_rejected(self):
        record = self._record()
        with pytest.raises(InvalidTransition):
            record.transition("paused")

    def test_record_round_trip(self):
        record = self._record()
        record.transition(RUNNING)
        record.progress_done = 3
        record.progress_total = 9
        rebuilt = JobRecord.from_dict(record.to_dict())
        assert rebuilt.state == RUNNING
        assert rebuilt.spec == record.spec
        assert rebuilt.progress_done == 3
        assert rebuilt.progress_total == 9
        assert rebuilt.transitions == record.transitions


class TestKindValidation:
    def test_campaign_defaults_valid(self):
        validate_campaign_spec({})

    def test_campaign_unknown_field(self):
        with pytest.raises(ValueError, match="unknown campaign spec"):
            validate_campaign_spec({"scenario": ["nominal"]})

    def test_campaign_seeds_xor_seed_count(self):
        with pytest.raises(ValueError, match="not both"):
            validate_campaign_spec({"seeds": [1], "seed_count": 2})

    def test_campaign_bad_scenario_name(self):
        with pytest.raises(ValueError):
            validate_campaign_spec({"scenarios": ["no-such-scenario"]})

    def test_campaign_bad_options(self):
        with pytest.raises(ValueError, match="unknown campaign option"):
            validate_campaign_spec({"options": {"deadline": 100}})

    def test_campaign_empty_selection(self):
        with pytest.raises(ValueError, match="no runs"):
            validate_campaign_spec({"seeds": []})

    def test_falsify_needs_family(self):
        with pytest.raises(TypeError):
            validate_falsify_spec({"config": {}})

    def test_falsify_valid(self):
        validate_falsify_spec({"config": {"family": "crossing", "budget": 4}})

    def test_falsify_unknown_family(self):
        with pytest.raises(ValueError, match="unknown scenario family"):
            validate_falsify_spec({"config": {"family": "marsbase"}})

    def test_replay_needs_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            validate_replay_spec({})
        with pytest.raises(ValueError, match="exactly one"):
            validate_replay_spec({"job": "j000001", "corpus": "/tmp/c.jsonl"})

    def test_replay_by_job_id_valid(self):
        validate_replay_spec({"job": "j000001", "index": 0})

"""Tests for the HTTP/JSON API, exercised over real sockets with the
stdlib client."""

import json
import time
import urllib.request

import pytest

from repro.service import ServiceClient, ServiceError

from .conftest import make_gate


@pytest.fixture
def client(api):
    return ServiceClient(api.url, timeout=10.0)


def _wait_done(client, job_id, timeout=10.0):
    record = client.wait(job_id, timeout=timeout)
    assert record["state"] == "done", record
    return record


class TestBasics:
    def test_healthz(self, client):
        body = client.health()
        assert body["status"] == "ok"
        assert "campaign" in body["kinds"]

    def test_stats(self, client):
        stats = client.stats()
        assert stats["workers"] == 2
        assert "telemetry" in stats

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/v1/nonsense")
        assert excinfo.value.status == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job("j424242")
        assert excinfo.value.status == 404


class TestSubmitAndQuery:
    def test_submit_runs_to_done(self, client):
        record = client.submit("ok", {"x": 3})
        assert record["state"] == "queued"
        final = _wait_done(client, record["id"])
        assert final["result"] == {"echo": 3}

    def test_submit_bad_kind_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit("mystery", {})
        assert excinfo.value.status == 400
        assert "unknown job kind" in excinfo.value.message

    def test_submit_invalid_spec_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit("ok", {})  # validator requires 'x'
        assert excinfo.value.status == 400

    def test_submit_malformed_json_400(self, api):
        request = urllib.request.Request(
            api.url + "/v1/jobs", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request)
        assert excinfo.value.code == 400

    def test_job_listing(self, client):
        a = client.submit("ok", {"x": 1})
        b = client.submit("ok", {"x": 2})
        ids = [r["id"] for r in client.jobs()]
        assert ids == sorted([a["id"], b["id"]])


class TestResults:
    def test_results_409_until_done(self, client, fake_kinds):
        spec, release, wait_running = make_gate(fake_kinds, "api-gate")
        record = client.submit("blocker", spec)
        wait_running()
        with pytest.raises(ServiceError) as excinfo:
            client.results(record["id"])
        assert excinfo.value.status == 409
        release()
        _wait_done(client, record["id"])
        body = client.results(record["id"])
        assert body["result"] == {"gate": "api-gate"}

    def test_results_of_failed_job_carry_traceback(self, client):
        record = client.submit("boom", {"message": "zap"})
        final = client.wait(record["id"], timeout=10.0)
        assert final["state"] == "failed"
        body = client.results(record["id"])
        assert "zap" in body["error"]
        assert "RuntimeError" in body["traceback"]


class TestCancel:
    def test_cancel_running_job(self, client, fake_kinds):
        spec, _release, wait_running = make_gate(fake_kinds, "api-cancel")
        record = client.submit("blocker", spec)
        wait_running()
        client.cancel(record["id"])
        final = client.wait(record["id"], timeout=10.0)
        assert final["state"] == "cancelled"


class TestEvents:
    def test_event_stream_with_offsets(self, client):
        record = client.submit("ok", {"x": 1})
        _wait_done(client, record["id"])
        events, offset, state = client.events(record["id"])
        kinds = [e["kind"] for e in events]
        assert kinds[0] == "job_queued"
        assert kinds[-1] == "job_done"
        assert state == "done"
        # Cursor past the end: empty, returns immediately (terminal).
        again, offset2, state = client.events(record["id"], offset=offset, wait=5.0)
        assert again == []
        assert offset2 == offset
        assert state == "done"

    def test_watch_terminates(self, client):
        record = client.submit("ok", {"x": 1})
        started = time.monotonic()
        events = list(client.watch(record["id"], wait=2.0))
        assert time.monotonic() - started < 20.0
        assert [e["kind"] for e in events][-1] == "job_done"

    def test_long_poll_delivers_new_events(self, client, fake_kinds):
        spec, release, wait_running = make_gate(fake_kinds, "api-poll")
        record = client.submit("blocker", spec)
        wait_running()
        events, offset, _ = client.events(record["id"])
        import threading

        threading.Timer(0.3, release).start()
        # Long-poll should return the job_done event without a full wait.
        deadline = time.monotonic() + 10.0
        got = []
        while time.monotonic() < deadline:
            new, offset, state = client.events(record["id"], offset=offset, wait=5.0)
            got.extend(e["kind"] for e in new)
            if state == "done" and not new:
                break
        assert "job_done" in got

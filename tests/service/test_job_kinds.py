"""End-to-end tests of the built-in job kinds against the real engines.

These run real (small) campaigns/searches, so they carry the ``slow``
marker; the scheduler/API mechanics are covered by the fast fakes in
the sibling modules.
"""

import json

import pytest

from repro.service import DONE, JobSpec, JobStore, Scheduler

from .test_scheduler import _wait_state

#: The search tests' known-falsifying configuration (pedestrian family,
#: seed 0 finds counterexamples within a budget of 12).
FALSIFY_CONFIG = {"family": "pedestrian", "mode": "falsify", "seed": 0, "budget": 12}


@pytest.mark.slow
def test_falsify_then_replay_by_job_id(tmp_path):
    store = JobStore(tmp_path / "root")
    scheduler = Scheduler(store, workers=2, max_jobs=2).start()
    try:
        falsify = scheduler.submit(
            JobSpec(kind="falsify", spec={"config": FALSIFY_CONFIG}, jobs=2)
        )
        final = _wait_state(scheduler, falsify.id, DONE, timeout=300.0)
        assert final.result["evaluations"] >= FALSIFY_CONFIG["budget"]
        assert final.result["counterexamples"] >= 1
        assert final.result["best_robustness"] < 0

        job_dir = store.job_dir(falsify.id)
        assert (job_dir / "search" / "corpus.jsonl").exists()
        assert (job_dir / "search" / "summary.json").exists()
        summary = json.loads((job_dir / "search" / "summary.json").read_text())
        assert summary["counterexamples"] == final.result["counterexamples"]

        # Replay the found counterexample through a second job that
        # resolves the corpus via the falsify job's id.
        replay = scheduler.submit(
            JobSpec(kind="replay", spec={"job": falsify.id, "index": 0})
        )
        replay_final = _wait_state(scheduler, replay.id, DONE, timeout=120.0)
        assert replay_final.result["drift"] <= 1e-9
        report = json.loads(
            (store.job_dir(replay.id) / "report.json").read_text()
        )
        assert report["kind"] == "replay_report"
        assert report["robustness"] == replay_final.result["robustness"]
    finally:
        scheduler.stop()


@pytest.mark.slow
def test_campaign_job_with_seed_list_and_profile(tmp_path):
    store = JobStore(tmp_path / "root")
    scheduler = Scheduler(store, workers=1, max_jobs=1).start()
    try:
        record = scheduler.submit(
            JobSpec(
                kind="campaign",
                spec={
                    "scenarios": ["nominal"],
                    "seeds": [0, 3],
                    "profile": True,
                },
            )
        )
        final = _wait_state(scheduler, record.id, DONE, timeout=120.0)
        assert final.result["total_runs"] == 2
        job_dir = store.job_dir(record.id)
        report = json.loads((job_dir / "report.json").read_text())
        seeds = [r["seed"] for r in report["scenarios"]["nominal"]["runs"]]
        assert seeds == [0, 3]
        assert (job_dir / "profile" / "profile.json").exists()
        assert (job_dir / "trace" / "manifest.json").exists()
        # Progress made it into the persisted record.
        assert final.progress_total == 2
        assert final.progress_done == 2
    finally:
        scheduler.stop()

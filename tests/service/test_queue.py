"""Tests for the priority queue: ordering, lazy deletion, slot-aware pops."""

import threading

from repro.service import JobQueue


class TestOrdering:
    def test_priority_then_submission_order(self):
        q = JobQueue()
        q.push("low", priority=0, seq=1)
        q.push("high", priority=5, seq=2)
        q.push("mid", priority=3, seq=3)
        assert q.items() == ["high", "mid", "low"]

    def test_fifo_within_priority(self):
        q = JobQueue()
        q.push("first", priority=1, seq=1)
        q.push("second", priority=1, seq=2)
        assert q.items() == ["first", "second"]

    def test_pop_ready_takes_best(self):
        q = JobQueue()
        q.push("low", priority=0, seq=1)
        q.push("high", priority=9, seq=2)
        assert q.pop_ready(lambda _: True, timeout=0.1) == "high"
        assert q.pop_ready(lambda _: True, timeout=0.1) == "low"
        assert len(q) == 0


class TestRemoval:
    def test_remove_queued(self):
        q = JobQueue()
        q.push("a", priority=0, seq=1)
        assert q.remove("a") is True
        assert q.remove("a") is False
        assert q.items() == []
        assert q.pop_ready(lambda _: True, timeout=0.05) is None

    def test_remove_middle_entry_keeps_others(self):
        q = JobQueue()
        for i, name in enumerate(("a", "b", "c")):
            q.push(name, priority=0, seq=i)
        q.remove("b")
        assert q.items() == ["a", "c"]


class TestSlotAwarePop:
    def test_backfill_skips_unready_head(self):
        # "wide" has priority but doesn't fit; "narrow" behind it does.
        q = JobQueue()
        q.push("wide", priority=9, seq=1)
        q.push("narrow", priority=0, seq=2)
        popped = q.pop_ready(lambda job_id: job_id == "narrow", timeout=0.2)
        assert popped == "narrow"
        assert q.items() == ["wide"]

    def test_pop_blocks_until_push(self):
        q = JobQueue()
        result = {}

        def consumer():
            result["got"] = q.pop_ready(lambda _: True, timeout=5.0)

        thread = threading.Thread(target=consumer)
        thread.start()
        q.push("late", priority=0, seq=1)
        thread.join(timeout=5.0)
        assert result["got"] == "late"

    def test_kick_reevaluates_predicate(self):
        q = JobQueue()
        q.push("a", priority=0, seq=1)
        gate = {"open": False}
        result = {}

        def consumer():
            result["got"] = q.pop_ready(lambda _: gate["open"], timeout=5.0)

        thread = threading.Thread(target=consumer)
        thread.start()
        gate["open"] = True
        q.kick()
        thread.join(timeout=5.0)
        assert result["got"] == "a"

    def test_timeout_returns_none(self):
        q = JobQueue()
        assert q.pop_ready(lambda _: True, timeout=0.05) is None

    def test_close_wakes_and_disables(self):
        q = JobQueue()
        q.push("a", priority=0, seq=1)
        q.close()
        assert q.pop_ready(lambda _: True, timeout=0.05) is None

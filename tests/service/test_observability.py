"""Service observability: /v1/metrics, stats schema, per-job metrics
snapshots, and telemetry surviving a scheduler restart."""

import threading
import time

import pytest

from repro.obs.metrics import (
    METRICS_FILE_NAME,
    load_metrics_json,
    parse_exposition,
    validate_exposition,
)
from repro.service import JobStore, Scheduler, ServiceClient
from repro.service.jobs import JobSpec, QUEUED, RUNNING, DONE
from repro.service.scheduler import ALL_STATES, STATS_SCHEMA_VERSION

from .conftest import make_gate


@pytest.fixture
def client(api):
    return ServiceClient(api.url, timeout=10.0)


def _series(text, name):
    """``sorted-label-string -> value`` for one family in an exposition."""
    out = {}
    for sample, labels, value in parse_exposition(text):
        if sample == name:
            out[",".join(f"{k}={labels[k]}" for k in sorted(labels))] = value
    return out


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_has_core_series(self, client):
        text = client.metrics()
        assert validate_exposition(text) == []
        names = {name for name, _, _ in parse_exposition(text)}
        assert {
            "repro_jobs_queue_depth",
            "repro_jobs_running",
            "repro_slots_free",
            "repro_slots_busy",
            "repro_slots_total",
            "repro_service_uptime_s",
        } <= names
        states = _series(text, "repro_service_jobs")
        assert set(states) == {f"state={s}" for s in ALL_STATES}

    def test_never_emits_nonfinite_tokens(self, client):
        text = client.metrics()
        assert "Infinity" not in text and "NaN" not in text

    def test_gauges_track_a_running_job(self, client, fake_kinds):
        spec, release, wait_running = make_gate(fake_kinds, "g-metrics")
        record = client.submit("blocker", spec)
        wait_running()
        text = client.metrics()
        assert _series(text, "repro_jobs_running")[""] == 1.0
        assert _series(text, "repro_slots_busy")[""] == 1.0
        assert _series(text, "repro_service_jobs")["state=running"] == 1.0
        release()
        final = client.wait(record["id"], timeout=10.0)
        assert final["state"] == "done"
        text = client.metrics()
        assert _series(text, "repro_jobs_running")[""] == 0.0
        assert _series(text, "repro_service_jobs")["state=done"] >= 1.0

    def test_job_latency_histograms_appear_after_a_job(self, client):
        record = client.submit("ok", {"x": 1})
        assert client.wait(record["id"], timeout=10.0)["state"] == "done"
        text = client.metrics()
        assert validate_exposition(text) == []
        samples = parse_exposition(text)
        for family in ("repro_jobs_wait_s", "repro_jobs_run_s"):
            count = [v for n, _, v in samples if n == f"{family}_count"]
            assert count and count[0] >= 1.0, family
            infs = [
                v for n, labels, v in samples
                if n == f"{family}_bucket" and labels.get("le") == "+Inf"
            ]
            assert infs == count

    def test_route_labels_are_patterns_not_ids(self, client):
        record = client.submit("ok", {"x": 1})
        client.wait(record["id"], timeout=10.0)
        client.job(record["id"])
        routes = _series(client.metrics(), "repro_http_requests_total")
        assert any("route=GET /v1/jobs/{id}" in k for k in routes)
        assert not any(record["id"] in k for k in routes)


class TestStats:
    def test_stats_carry_schema_version_uptime(self, client):
        stats = client.stats()
        assert stats["schema"] == STATS_SCHEMA_VERSION
        from repro import __version__

        assert stats["version"] == __version__
        assert isinstance(stats["uptime_s"], float) and stats["uptime_s"] >= 0


class TestMetricsSnapshot:
    def test_metrics_json_written_at_settle(self, client, scheduler):
        record = client.submit("ok", {"x": 7})
        assert client.wait(record["id"], timeout=10.0)["state"] == "done"
        path = scheduler.store.job_dir(record["id"]) / METRICS_FILE_NAME
        # The snapshot lands just after the terminal state is saved.
        deadline = time.monotonic() + 5.0
        while not path.exists() and time.monotonic() < deadline:
            time.sleep(0.02)
        registry, meta = load_metrics_json(path)
        assert meta["job"] == record["id"]
        assert meta["state"] == "done"
        assert meta["run_s"] >= 0
        assert registry.counters["service.jobs_submitted"].value >= 1
        assert "Infinity" not in path.read_text()


class TestRestartReconcile:
    def test_recovered_metrics_match_disk_no_phantom_running(
        self, tmp_path, fake_kinds
    ):
        """The restart-survival contract: after recover(), re-exposed
        gauges reconcile with on-disk job states — an orphaned RUNNING
        job shows up as queued again, never as a phantom running job."""
        store = JobStore(tmp_path / "root")
        done = store.create(JobSpec(kind="ok", spec={"x": 1}))
        done.transition(RUNNING)
        done.transition(DONE)
        store.save(done)
        orphan = store.create(JobSpec(kind="ok", spec={"x": 2}))
        orphan.transition(RUNNING)  # server died mid-run
        store.save(orphan)

        sched = Scheduler(store, workers=1)
        recovered = sched.recover()
        assert recovered == [orphan.id]

        registry = sched.collect()
        assert registry.gauges["jobs.running"].value == 0.0
        assert registry.gauges["jobs.state.running"].value == 0.0
        assert registry.gauges["jobs.state.queued"].value == 1.0
        assert registry.gauges["jobs.state.done"].value == 1.0
        assert registry.gauges["jobs.queue_depth"].value == 1.0
        assert registry.counters["service.jobs_recovered"].value == 1.0

        # And the queued orphan actually runs to completion on restart.
        sched.start()
        try:
            deadline_record = None
            for _ in range(200):
                deadline_record = sched.job(orphan.id)
                if deadline_record.state == DONE:
                    break
                time.sleep(0.05)
            assert deadline_record is not None and deadline_record.state == DONE
            after = sched.collect()
            assert after.gauges["jobs.state.queued"].value == 0.0
            assert after.gauges["jobs.state.done"].value == 2.0
            assert after.gauges["jobs.running"].value == 0.0
        finally:
            sched.stop(wait=True, timeout=5.0)

    def test_store_telemetry_rebinds_to_new_scheduler(self, tmp_path, fake_kinds):
        store = JobStore(tmp_path / "root")
        first = Scheduler(store, workers=1)
        assert store.telemetry is first.telemetry
        # A fresh scheduler over the same (already bound) store keeps the
        # original registry: append/save timings keep accumulating.
        second = Scheduler(store, workers=1)
        assert store.telemetry is first.telemetry
        assert second.telemetry is not None


class TestWatchQueuePosition:
    def test_queue_position_printed_for_queued_job(
        self, client, fake_kinds, capsys
    ):
        from repro.service.__main__ import _report_queue_position

        # Fill both worker slots, then queue one more job behind them.
        blockers = []
        for name in ("w1", "w2"):
            spec, release, wait_running = make_gate(fake_kinds, name)
            blockers.append((client.submit("blocker", spec), release))
            wait_running()
        queued = client.submit("ok", {"x": 1})
        assert client.job(queued["id"])["state"] == QUEUED

        # Report from a thread while the job is genuinely queued, then
        # unblock the slots so the reporter sees it leave the queue.
        reporter = threading.Thread(
            target=_report_queue_position,
            args=(client, queued["id"]),
            kwargs={"poll_s": 0.02},
        )
        reporter.start()
        time.sleep(0.2)
        for _, release in blockers:
            release()
        reporter.join(timeout=10.0)
        assert not reporter.is_alive()
        err = capsys.readouterr().err
        assert f"{queued['id']}  queued  position 1/1" in err
        assert client.wait(queued["id"], timeout=10.0)["state"] == "done"

"""Service test fixtures: fast fake job kinds, scheduler, HTTP server.

The real kinds run multi-second campaigns; unit tests register cheap
fakes through the public kind registry instead, so scheduler/API
behaviour is exercised in milliseconds.  The registry is global, so
every fake is unregistered at teardown.
"""

import threading
import time

import pytest

from repro.exec import CampaignCancelled
from repro.service import (
    JobStore,
    Scheduler,
    register_job_kind,
    unregister_job_kind,
)
from repro.service.api import serve


@pytest.fixture
def fake_kinds():
    """Register cheap job kinds: ok / boom / slow / blocker.

    ``blocker`` holds until its per-spec ``gate`` event is set (or the
    job is cancelled), letting tests freeze a job mid-run without
    sleeping.  ``gates`` maps gate names to threading.Events.
    """
    gates = {}
    started = {}

    def run_ok(spec, ctx):
        (ctx.job_dir / "out.txt").write_text("done")
        return {"echo": spec.get("x")}

    def run_boom(spec, ctx):
        raise RuntimeError(spec.get("message", "boom"))

    def run_blocker(spec, ctx):
        name = spec["gate"]
        started[name] = time.monotonic()
        gates.setdefault(name, threading.Event())
        gates[f"{name}.running"].set()
        while not gates[name].wait(timeout=0.01):
            if ctx.cancel is not None and ctx.cancel():
                raise CampaignCancelled("cancelled")
        return {"gate": name}

    def validate_needs_x(spec):
        if "x" not in spec:
            raise ValueError("spec needs 'x'")

    register_job_kind("ok", run_ok, validate_needs_x)
    register_job_kind("boom", run_boom)
    register_job_kind("blocker", run_blocker)
    try:
        yield {"gates": gates, "started": started}
    finally:
        for name in ("ok", "boom", "blocker"):
            unregister_job_kind(name)


def make_gate(fake_kinds, name):
    """Prepare a blocker gate; returns (spec, release, wait_running)."""
    fake_kinds["gates"][name] = threading.Event()
    fake_kinds["gates"][f"{name}.running"] = threading.Event()

    def release():
        fake_kinds["gates"][name].set()

    def wait_running(timeout=5.0):
        assert fake_kinds["gates"][f"{name}.running"].wait(timeout), (
            f"blocker {name} never started"
        )

    return {"gate": name}, release, wait_running


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "root")


@pytest.fixture
def scheduler(store, fake_kinds):
    sched = Scheduler(store, workers=2, max_jobs=4).start()
    yield sched
    sched.stop(wait=True, timeout=5.0)


@pytest.fixture
def api(scheduler):
    server, thread = serve(scheduler)
    yield server
    server.shutdown()

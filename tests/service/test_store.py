"""Tests for the on-disk job store: durability, ids, the event stream."""

import json

import pytest

from repro.service import JobRecord, JobSpec, JobStore, UnknownJob
from repro.service.store import EVENTS_FILE, JOB_FILE, STATE_FILE


def _spec(**kwargs):
    return JobSpec(kind="campaign", **kwargs)


class TestCreateAndLoad:
    def test_sequential_ids(self, tmp_path):
        store = JobStore(tmp_path)
        a = store.create(_spec())
        b = store.create(_spec())
        assert (a.id, b.id) == ("j000001", "j000002")
        assert (a.seq, b.seq) == (1, 2)

    def test_ids_continue_after_reopen(self, tmp_path):
        JobStore(tmp_path).create(_spec())
        record = JobStore(tmp_path).create(_spec())
        assert record.id == "j000002"

    def test_create_writes_immutable_and_state_files(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(_spec(priority=3))
        job_dir = store.job_dir(record.id)
        submission = json.loads((job_dir / JOB_FILE).read_text())
        assert submission["spec"]["priority"] == 3
        state = json.loads((job_dir / STATE_FILE).read_text())
        assert state["state"] == "queued"

    def test_save_and_load_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(_spec())
        record.transition("running")
        record.progress_done = 2
        store.save(record)
        loaded = store.load(record.id)
        assert loaded.state == "running"
        assert loaded.progress_done == 2

    def test_save_is_atomic_replace(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(_spec())
        state_file = store.job_dir(record.id) / STATE_FILE
        before = state_file.read_text()
        assert json.loads(before)  # parseable at every point in time
        store.save(record)
        assert not state_file.with_name(STATE_FILE + ".tmp").exists()

    def test_unknown_job_raises(self, tmp_path):
        store = JobStore(tmp_path)
        with pytest.raises(UnknownJob):
            store.job_dir("j999999")
        with pytest.raises(UnknownJob):
            store.load("j999999")

    def test_list_in_submission_order(self, tmp_path):
        store = JobStore(tmp_path)
        ids = [store.create(_spec()).id for _ in range(3)]
        assert [r.id for r in store.list()] == ids


class TestEventStream:
    def test_append_and_read_with_offsets(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(_spec())
        store.append_event(record.id, {"kind": "a"})
        store.append_event(record.id, {"kind": "b"})
        lines, offset = store.read_events(record.id, 0)
        assert [json.loads(l)["kind"] for l in lines] == ["a", "b"]
        # Nothing new at the cursor...
        again, offset2 = store.read_events(record.id, offset)
        assert again == [] and offset2 == offset
        # ...until another append lands.
        store.append_event(record.id, {"kind": "c"})
        lines, _ = store.read_events(record.id, offset)
        assert [json.loads(l)["kind"] for l in lines] == ["c"]

    def test_partial_trailing_line_not_delivered(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(_spec())
        store.append_event(record.id, {"kind": "a"})
        events_path = store.job_dir(record.id) / EVENTS_FILE
        with events_path.open("a") as fh:
            fh.write('{"kind": "tor')  # torn write, no newline
        lines, offset = store.read_events(record.id, 0)
        assert [json.loads(l)["kind"] for l in lines] == ["a"]
        # The torn tail stays invisible; offset points just past "a".
        again, _ = store.read_events(record.id, offset)
        assert again == []

    def test_missing_events_file_is_empty(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(_spec())
        assert store.read_events(record.id, 0) == ([], 0)


class TestErrorFile:
    def test_write_and_read(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(_spec())
        assert store.read_error(record.id) is None
        store.write_error(record.id, "Traceback ...")
        assert store.read_error(record.id).startswith("Traceback")

"""Tests for the scheduler: dispatch, slot budget, cancel, recovery,
and per-job journal isolation."""

import json
import threading
import time

import pytest

from repro.exec import CampaignEngine, EnginePolicy, WorkUnit, load_journal
from repro.service import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobSpec,
    JobStore,
    Scheduler,
    register_job_kind,
    unregister_job_kind,
)

from .conftest import make_gate


def _wait_state(scheduler, job_id, state, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = scheduler.job(job_id)
        if record.state == state:
            return record
        time.sleep(0.01)
    raise AssertionError(
        f"job {job_id} never reached {state} (is {scheduler.job(job_id).state})"
    )


class TestDispatch:
    def test_job_runs_to_done(self, scheduler, store):
        record = scheduler.submit(JobSpec(kind="ok", spec={"x": 7}))
        final = _wait_state(scheduler, record.id, DONE)
        assert final.result == {"echo": 7}
        assert (store.job_dir(record.id) / "out.txt").read_text() == "done"
        persisted = store.load(record.id)
        assert persisted.state == DONE

    def test_submit_time_validation_rejects_bad_spec(self, scheduler):
        with pytest.raises(ValueError, match="needs 'x'"):
            scheduler.submit(JobSpec(kind="ok", spec={}))
        assert scheduler.jobs() == []

    def test_failed_job_records_error_and_traceback(self, scheduler, store):
        record = scheduler.submit(JobSpec(kind="boom", spec={"message": "pow"}))
        final = _wait_state(scheduler, record.id, FAILED)
        assert "pow" in final.error
        assert "RuntimeError" in store.read_error(record.id)
        events = [json.loads(l) for l in store.read_events(record.id, 0)[0]]
        assert events[-1]["kind"] == "job_failed"

    def test_events_cover_lifecycle(self, scheduler, store):
        record = scheduler.submit(JobSpec(kind="ok", spec={"x": 1}))
        _wait_state(scheduler, record.id, DONE)
        kinds = [
            json.loads(l)["kind"] for l in store.read_events(record.id, 0)[0]
        ]
        assert kinds[0] == "job_queued"
        assert "job_started" in kinds
        assert kinds[-1] == "job_done"

    def test_priority_order_when_saturated(self, scheduler, fake_kinds):
        # Fill both worker slots, then queue two more; the higher
        # priority submission must run first once slots free up.
        blockers = []
        for name in ("g1", "g2"):
            spec, release, wait_running = make_gate(fake_kinds, name)
            record = scheduler.submit(JobSpec(kind="blocker", spec=spec))
            blockers.append((record, release, wait_running))
        for _, _, wait_running in blockers:
            wait_running()
        low = scheduler.submit(JobSpec(kind="ok", spec={"x": 1}, priority=0))
        high = scheduler.submit(JobSpec(kind="ok", spec={"x": 2}, priority=9))
        assert scheduler.queue.items() == [high.id, low.id]
        for _, release, _ in blockers:
            release()
        _wait_state(scheduler, high.id, DONE)
        _wait_state(scheduler, low.id, DONE)


class TestSlotBudget:
    def test_wide_job_clamped_to_worker_budget(self, scheduler, fake_kinds):
        spec, release, wait_running = make_gate(fake_kinds, "wide")
        record = scheduler.submit(JobSpec(kind="blocker", spec=spec, jobs=99))
        wait_running()
        stats = scheduler.stats()
        assert stats["free_slots"] == 0  # clamped to workers=2, not 99
        release()
        _wait_state(scheduler, record.id, DONE)

    def test_narrow_jobs_share_slots(self, scheduler, fake_kinds):
        specs = []
        for name in ("n1", "n2"):
            spec, release, wait_running = make_gate(fake_kinds, name)
            scheduler.submit(JobSpec(kind="blocker", spec=spec, jobs=1))
            specs.append((release, wait_running))
        for release, wait_running in specs:
            wait_running()  # both run concurrently on workers=2
        assert len(scheduler.stats()["running"]) == 2
        for release, _ in specs:
            release()

    def test_wide_job_waits_for_full_budget(self, scheduler, fake_kinds):
        spec1, release1, wait_running1 = make_gate(fake_kinds, "hold")
        holder = scheduler.submit(JobSpec(kind="blocker", spec=spec1, jobs=1))
        wait_running1()
        spec2, release2, wait_running2 = make_gate(fake_kinds, "wide2")
        wide = scheduler.submit(JobSpec(kind="blocker", spec=spec2, jobs=2))
        time.sleep(0.1)
        assert scheduler.job(wide.id).state == QUEUED  # 1 slot free, needs 2
        release1()
        wait_running2()
        release2()
        _wait_state(scheduler, holder.id, DONE)
        _wait_state(scheduler, wide.id, DONE)


class TestCancel:
    def test_cancel_queued_job(self, scheduler, fake_kinds):
        blockers = []
        for name in ("b1", "b2"):
            spec, release, wait_running = make_gate(fake_kinds, name)
            scheduler.submit(JobSpec(kind="blocker", spec=spec))
            blockers.append((release, wait_running))
        for _, wait_running in blockers:
            wait_running()
        queued = scheduler.submit(JobSpec(kind="ok", spec={"x": 1}))
        cancelled = scheduler.cancel(queued.id)
        assert cancelled.state == CANCELLED
        for release, _ in blockers:
            release()

    def test_cancel_running_job(self, scheduler, fake_kinds):
        spec, _release, wait_running = make_gate(fake_kinds, "victim")
        record = scheduler.submit(JobSpec(kind="blocker", spec=spec))
        wait_running()
        scheduler.cancel(record.id)
        final = _wait_state(scheduler, record.id, CANCELLED)
        assert final.terminal

    def test_cancel_terminal_job_is_noop(self, scheduler):
        record = scheduler.submit(JobSpec(kind="ok", spec={"x": 1}))
        _wait_state(scheduler, record.id, DONE)
        assert scheduler.cancel(record.id).state == DONE


class TestRecovery:
    def test_orphaned_running_job_requeues_and_completes(self, store, fake_kinds):
        # First scheduler "dies" with the job mid-flight: simulate by
        # writing a running state straight to the store.
        record = store.create(JobSpec(kind="ok", spec={"x": 5}))
        record.transition(RUNNING)
        store.save(record)

        scheduler = Scheduler(store, workers=2).start()
        try:
            final = _wait_state(scheduler, record.id, DONE)
            assert final.recovered == 1
            assert final.result == {"echo": 5}
        finally:
            scheduler.stop()

    def test_queued_jobs_survive_restart(self, store, fake_kinds):
        store.create(JobSpec(kind="ok", spec={"x": 1}))
        scheduler = Scheduler(store, workers=2).start()
        try:
            final = _wait_state(scheduler, "j000001", DONE)
            assert final.result == {"echo": 1}
        finally:
            scheduler.stop()

    def test_terminal_jobs_left_alone(self, store, fake_kinds):
        record = store.create(JobSpec(kind="ok", spec={"x": 1}))
        record.transition(RUNNING)
        record.transition(DONE, result={"echo": 1})
        store.save(record)
        scheduler = Scheduler(store, workers=2)
        assert scheduler.recover() == []
        assert scheduler.job(record.id).state == DONE

    def test_graceful_stop_requeues_interrupted_job(self, store, fake_kinds):
        spec, _release, wait_running = make_gate(fake_kinds, "interrupted")
        scheduler = Scheduler(store, workers=2).start()
        record = scheduler.submit(JobSpec(kind="blocker", spec=spec))
        wait_running()
        scheduler.stop(wait=True, timeout=5.0)
        # Not cancelled — back to queued so a restart resumes it.
        assert store.load(record.id).state == QUEUED


# ----------------------------------------------------------------------
# journal isolation: two engine-backed jobs running concurrently must
# keep fully separate journals/checkpoints in their sibling job dirs.
# ----------------------------------------------------------------------
def _double(payload):
    return payload * 2


def run_engine_job(spec, ctx):
    """A fake kind that runs a real CampaignEngine in the job dir."""
    units = [
        WorkUnit(key=f"{spec['prefix']}-{i}", payload=i)
        for i in range(spec["count"])
    ]
    engine = CampaignEngine(
        _double, EnginePolicy(jobs=1),
        journal=ctx.job_dir / "journal.jsonl", resume=True, progress=None,
        spec_fingerprint=f"engine-job:{spec['prefix']}",
        cancel=ctx.cancel,
        encode=lambda r: r, decode=lambda r: r,
    )
    report = engine.run(units)
    return {"results": report.results()}


class TestJournalIsolation:
    @pytest.fixture(autouse=True)
    def _engine_kind(self):
        register_job_kind("engine-job", run_engine_job)
        yield
        unregister_job_kind("engine-job")

    def test_sibling_jobs_do_not_share_journals(self, store):
        scheduler = Scheduler(store, workers=2, max_jobs=2).start()
        try:
            a = scheduler.submit(
                JobSpec(kind="engine-job", spec={"prefix": "alpha", "count": 40})
            )
            b = scheduler.submit(
                JobSpec(kind="engine-job", spec={"prefix": "beta", "count": 40})
            )
            _wait_state(scheduler, a.id, DONE)
            _wait_state(scheduler, b.id, DONE)
        finally:
            scheduler.stop()

        state_a = load_journal(store.job_dir(a.id) / "journal.jsonl")
        state_b = load_journal(store.job_dir(b.id) / "journal.jsonl")
        assert state_a.completed_keys() == {f"alpha-{i}" for i in range(40)}
        assert state_b.completed_keys() == {f"beta-{i}" for i in range(40)}
        # Distinct spec fingerprints recorded in each header.
        assert state_a.header["spec_fingerprint"] == "engine-job:alpha"
        assert state_b.header["spec_fingerprint"] == "engine-job:beta"
        assert store.job_dir(a.id) != store.job_dir(b.id)

    def test_requeued_engine_job_resumes_not_reruns(self, store):
        # Pre-populate a job whose journal already has some settled units,
        # marked running (orphaned); recovery must resume, not redo.
        record = store.create(
            JobSpec(kind="engine-job", spec={"prefix": "res", "count": 5})
        )
        record.transition(RUNNING)
        store.save(record)
        engine = CampaignEngine(
            _double, EnginePolicy(jobs=1),
            journal=store.job_dir(record.id) / "journal.jsonl",
            progress=None, spec_fingerprint="engine-job:res",
            encode=lambda r: r, decode=lambda r: r,
        )
        engine.run([WorkUnit(key=f"res-{i}", payload=i) for i in range(2)])

        executed = []

        def counting_run(spec, ctx):
            result = run_engine_job(spec, ctx)
            executed.append(spec["prefix"])
            return result

        register_job_kind("engine-job", counting_run)
        scheduler = Scheduler(store, workers=1).start()
        try:
            final = _wait_state(scheduler, record.id, DONE)
        finally:
            scheduler.stop()
        assert final.result == {"results": [0, 2, 4, 6, 8]}
        state = load_journal(store.job_dir(record.id) / "journal.jsonl")
        assert state.completed_keys() == {f"res-{i}" for i in range(5)}

"""Tests for the campaign execution engine: determinism, fault tolerance,
timeout enforcement, checkpoint/resume and telemetry."""

import json
import os
import time

import pytest

from repro.exec import (
    CampaignEngine,
    CampaignExecutionError,
    EnginePolicy,
    WorkUnit,
    load_journal,
)
from repro.exec.engine import _fork_available
from repro.exec.progress import (
    CAMPAIGN_FINISHED,
    CAMPAIGN_STARTED,
    TASK_FINISHED,
    TASK_RETRY,
    StderrReporter,
)


# ----------------------------------------------------------------------
# module-level (picklable) task functions
# ----------------------------------------------------------------------
def square(payload):
    return payload * payload


def always_fail(payload):
    raise ValueError(f"bad unit {payload}")


def fail_or_square(payload):
    if payload == "poison":
        raise ValueError("bad unit poison")
    return payload * payload


def flaky(payload):
    """Fail until a file-backed counter reaches the configured threshold."""
    counter_path, fail_times = payload
    count = int(open(counter_path).read()) if os.path.exists(counter_path) else 0
    if count < fail_times:
        with open(counter_path, "w") as fh:
            fh.write(str(count + 1))
        raise RuntimeError(f"flaky failure #{count + 1}")
    return "recovered"


def hang(payload):
    time.sleep(payload)
    return "woke"


def die_once(payload):
    """Kill the worker process on first execution, succeed on retry."""
    sentinel, value = payload
    if not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(13)  # simulate a segfaulting worker
    return value


def die_always(payload):
    os._exit(13)


def count_and_square(payload):
    """Track executions through a sentinel directory (survives fork)."""
    sentinel_dir, value = payload
    open(os.path.join(sentinel_dir, f"ran-{value}"), "w").close()
    return value * value


def _units(n):
    return [WorkUnit(key=f"k{i}", payload=i) for i in range(n)]


def policy(**kw):
    kw.setdefault("retry_backoff_s", 0.01)
    return EnginePolicy(**kw)


class TestSerialExecution:
    def test_results_in_unit_order(self):
        report = CampaignEngine(square, policy(), progress=None).run(_units(10))
        assert [r.result for r in report.records] == [i * i for i in range(10)]
        assert all(r.ok and r.attempts == 1 for r in report.records)
        assert report.summary.executed == 10
        assert report.summary.mode == "serial"

    def test_deterministic_across_runs(self):
        engine = CampaignEngine(square, policy(), progress=None)
        first = engine.run(_units(8))
        second = engine.run(_units(8))
        assert first.results() == second.results()

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            EnginePolicy(jobs=0)
        with pytest.raises(ValueError):
            EnginePolicy(max_retries=-1)
        with pytest.raises(ValueError):
            EnginePolicy(timeout_s=0.0)


class TestParallelMatchesSerial:
    def test_pool_equals_serial_field_for_field(self):
        units = _units(16)
        serial = CampaignEngine(square, policy(jobs=1), progress=None).run(units)
        parallel = CampaignEngine(square, policy(jobs=4), progress=None).run(units)
        assert serial.results() == parallel.results()
        assert [r.key for r in serial.records] == [r.key for r in parallel.records]
        assert parallel.summary.mode in ("process-pool", "serial")  # fork-less CI

    def test_pool_uses_multiple_workers_when_available(self):
        report = CampaignEngine(square, policy(jobs=2), progress=None).run(_units(12))
        if report.summary.mode == "process-pool":
            assert report.summary.jobs == 2
            assert all(r.worker and r.worker.startswith("pid") for r in report.records)


class TestFaultTolerance:
    def test_task_error_recorded_not_raised(self):
        units = [WorkUnit(key="good", payload=3), WorkUnit(key="bad", payload="poison")]
        report = CampaignEngine(
            fail_or_square, policy(max_retries=1), progress=None
        ).run(units)
        by_key = report.record_map()
        assert by_key["good"].ok and by_key["good"].result == 9
        bad = by_key["bad"]
        assert not bad.ok
        assert bad.error.error_type == "ValueError"
        assert "poison" in bad.error.message
        assert bad.attempts == 2  # 1 try + 1 retry
        assert report.summary.errors == 1
        assert report.summary.retries == 1

    def test_raise_on_error_surfaces_failures(self):
        report = CampaignEngine(
            always_fail, policy(max_retries=0), progress=None
        ).run(_units(2))
        with pytest.raises(CampaignExecutionError, match="2 task"):
            report.raise_on_error()

    def test_retry_then_recover(self, tmp_path):
        counter = tmp_path / "count"
        unit = WorkUnit(key="flaky", payload=(str(counter), 2))
        report = CampaignEngine(
            flaky, policy(max_retries=3), progress=None
        ).run([unit])
        record = report.records[0]
        assert record.ok and record.result == "recovered"
        assert record.attempts == 3
        assert report.summary.retries == 2

    def test_timeout_becomes_task_error(self):
        units = [WorkUnit(key="fast", payload=0.0), WorkUnit(key="slow", payload=30.0)]
        report = CampaignEngine(
            hang, policy(timeout_s=0.2, max_retries=0), progress=None
        ).run(units)
        by_key = report.record_map()
        assert by_key["fast"].ok
        slow = by_key["slow"]
        assert not slow.ok
        assert slow.error.error_type == "TaskTimeout"

    def test_timeout_in_pool_mode(self):
        units = [WorkUnit(key="fast", payload=0.0), WorkUnit(key="slow", payload=30.0)]
        report = CampaignEngine(
            hang, policy(jobs=2, timeout_s=0.2, max_retries=0), progress=None
        ).run(units)
        by_key = report.record_map()
        assert by_key["fast"].ok
        assert not by_key["slow"].ok
        assert by_key["slow"].error.error_type == "TaskTimeout"

    @pytest.mark.skipif(not _fork_available(), reason="needs forked worker pool")
    def test_dead_worker_pool_rebuilds_and_retries(self, tmp_path):
        sentinel = tmp_path / "died-once"
        benign = tmp_path / "already-died"
        benign.touch()  # pre-marked: these units never kill their worker
        units = [WorkUnit(key="die", payload=(str(sentinel), 42))] + [
            WorkUnit(key=f"ok{i}", payload=(str(benign), i)) for i in range(3)
        ]
        report = CampaignEngine(
            die_once, policy(jobs=2, max_retries=4), progress=None
        ).run(units)
        by_key = report.record_map()
        assert by_key["die"].ok and by_key["die"].result == 42
        for i in range(3):
            assert by_key[f"ok{i}"].ok and by_key[f"ok{i}"].result == i
        assert report.summary.mode == "process-pool"
        assert report.summary.retries >= 1

    @pytest.mark.skipif(not _fork_available(), reason="needs forked worker pool")
    def test_permanently_dying_worker_becomes_task_error(self):
        report = CampaignEngine(
            die_always, policy(jobs=2, max_retries=1), progress=None
        ).run([WorkUnit(key="die", payload=None)])
        record = report.records[0]
        assert not record.ok
        assert record.attempts == 2
        assert record.error.error_type == "BrokenProcessPool"


class TestCheckpointResume:
    def test_journal_written_and_resume_skips_done(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        sentinels = tmp_path / "first"
        sentinels.mkdir()
        units = [
            WorkUnit(key=f"k{i}", payload=(str(sentinels), i)) for i in range(6)
        ]
        first = CampaignEngine(
            count_and_square, policy(), journal=journal, progress=None
        ).run(units)
        assert first.summary.executed == 6
        assert load_journal(journal).completed_keys() == {u.key for u in units}

        # Simulate a mid-campaign kill: drop the last 3 task lines and
        # truncate what remains mid-line.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:4]) + "\n" + lines[4][:25])

        sentinels2 = tmp_path / "second"
        sentinels2.mkdir()
        resumed_units = [
            WorkUnit(key=f"k{i}", payload=(str(sentinels2), i)) for i in range(6)
        ]
        second = CampaignEngine(
            count_and_square, policy(), journal=journal, resume=True, progress=None
        ).run(resumed_units)

        # Only the 3 missing tasks re-ran; the rest replayed from journal.
        assert sorted(os.listdir(sentinels2)) == ["ran-3", "ran-4", "ran-5"]
        assert second.summary.cached == 3
        assert second.summary.executed == 3
        assert [r.result for r in second.records] == [i * i for i in range(6)]
        cached_keys = {r.key for r in second.records if r.cached}
        assert cached_keys == {"k0", "k1", "k2"}
        # The journal is now complete again.
        assert load_journal(journal).completed_keys() == {u.key for u in units}

    def test_resume_with_complete_journal_runs_nothing(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        sentinels = tmp_path / "s1"
        sentinels.mkdir()
        units = [WorkUnit(key=f"k{i}", payload=(str(sentinels), i)) for i in range(4)]
        CampaignEngine(
            count_and_square, policy(), journal=journal, progress=None
        ).run(units)

        sentinels2 = tmp_path / "s2"
        sentinels2.mkdir()
        units2 = [WorkUnit(key=f"k{i}", payload=(str(sentinels2), i)) for i in range(4)]
        report = CampaignEngine(
            count_and_square, policy(), journal=journal, resume=True, progress=None
        ).run(units2)
        assert os.listdir(sentinels2) == []
        assert report.summary.cached == 4
        assert report.summary.executed == 0

    def test_fresh_run_overwrites_stale_journal(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        journal.write_text(
            json.dumps({"kind": "task", "key": "k0", "status": "ok", "result": 999})
            + "\n"
        )
        report = CampaignEngine(
            square, policy(), journal=journal, progress=None
        ).run(_units(2))
        assert report.results() == [0, 1]
        state = load_journal(journal)
        assert state.tasks["k0"]["result"] == 0  # not the stale 999

    def test_errors_are_journaled_and_retried_on_resume(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        CampaignEngine(
            always_fail, policy(max_retries=0), journal=journal, progress=None
        ).run(_units(2))
        state = load_journal(journal)
        assert state.completed_keys() == set()
        assert all(rec["status"] == "error" for rec in state.tasks.values())

        # Resume re-runs failed keys (with a now-working task function).
        report = CampaignEngine(
            square, policy(), journal=journal, resume=True, progress=None
        ).run(_units(2))
        assert report.summary.executed == 2
        assert report.results() == [0, 1]

    def test_resume_works_in_pool_mode(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        units = _units(8)
        CampaignEngine(square, policy(), journal=journal, progress=None).run(units[:5])
        report = CampaignEngine(
            square, policy(jobs=2), journal=journal, resume=True, progress=None
        ).run(units)
        assert report.summary.cached == 5
        assert report.results() == [i * i for i in range(8)]


class TestProgressAndSummary:
    def test_event_stream(self):
        events = []
        CampaignEngine(square, policy(), progress=events.append).run(_units(3))
        kinds = [e.kind for e in events]
        assert kinds[0] == CAMPAIGN_STARTED
        assert kinds[-1] == CAMPAIGN_FINISHED
        finished = [e for e in events if e.kind == TASK_FINISHED]
        assert len(finished) == 3
        assert finished[-1].done == 3 and finished[-1].total == 3

    def test_retry_events_emitted(self, tmp_path):
        counter = tmp_path / "count"
        events = []
        CampaignEngine(flaky, policy(max_retries=2), progress=events.append).run(
            [WorkUnit(key="f", payload=(str(counter), 1))]
        )
        assert [e.kind for e in events if e.kind == TASK_RETRY] == [TASK_RETRY]

    def test_summary_telemetry(self):
        report = CampaignEngine(square, policy(), progress=None).run(_units(5))
        summary = report.summary
        assert summary.total == 5
        assert summary.succeeded == 5
        assert summary.wall_time_s > 0
        assert summary.per_worker_tasks == {"main": 5}
        assert 0.0 <= summary.utilization <= 1.0
        text = summary.render()
        assert "5 tasks" in text and "jobs=1" in text

    def test_stderr_reporter_renders(self):
        import io

        stream = io.StringIO()
        reporter = StderrReporter(stream=stream, min_interval_s=0.0)
        CampaignEngine(square, policy(), progress=reporter).run(_units(4))
        out = stream.getvalue()
        assert "4/4" in out and "runs/s" in out

    def test_non_tty_reporter_emits_plain_lines(self):
        import io

        stream = io.StringIO()  # no isatty -> non-TTY path
        reporter = StderrReporter(stream=stream, non_tty_interval_s=0.0)
        assert not reporter.is_tty
        CampaignEngine(square, policy(), progress=reporter).run(_units(3))
        out = stream.getvalue()
        # Whole newline-terminated lines, never carriage-return rewrites.
        assert "\r" not in out
        assert out.endswith("\n")
        assert "[exec] finished 3/3 runs" in out

    def test_non_tty_reporter_rate_limited(self):
        import io

        stream = io.StringIO()
        reporter = StderrReporter(stream=stream, non_tty_interval_s=3600.0)
        CampaignEngine(square, policy(), progress=reporter).run(_units(5))
        lines = [l for l in stream.getvalue().splitlines() if l]
        # Interval far above the campaign duration: intermediate tasks are
        # suppressed; the final task (done == total bypasses the limit)
        # and the summary always land.
        for done in (2, 3, 4):
            assert not any(f"{done}/5 runs" in l and "eta" in l for l in lines)
        assert any("5/5 runs" in l and "eta" in l for l in lines)
        assert lines[-1].startswith("[exec] finished 5/5 runs")

    def test_tty_reporter_uses_carriage_returns(self):
        import io

        class Tty(io.StringIO):
            def isatty(self):
                return True

        stream = Tty()
        reporter = StderrReporter(stream=stream, min_interval_s=0.0)
        assert reporter.is_tty
        CampaignEngine(square, policy(), progress=reporter).run(_units(3))
        assert "\r" in stream.getvalue()

"""Tests for the JSONL run journal: append, load, truncation tolerance."""

import json

from repro.exec import RunJournal, load_journal


class TestRoundTrip:
    def test_header_and_tasks(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.write_header("abc123", total=3)
            journal.append_task("k1", "ok", attempts=1, elapsed_s=0.5,
                                worker="pid7", result={"x": 1})
            journal.append_task("k2", "error", attempts=3, elapsed_s=0.1,
                                error="boom", error_type="RuntimeError")

        state = load_journal(path)
        assert state.header["fingerprint"] == "abc123"
        assert state.header["total"] == 3
        assert state.tasks["k1"]["result"] == {"x": 1}
        assert state.tasks["k2"]["error_type"] == "RuntimeError"
        assert state.completed_keys() == {"k1"}
        assert state.corrupt_lines == 0

    def test_missing_file_is_empty_state(self, tmp_path):
        state = load_journal(tmp_path / "absent.jsonl")
        assert state.header is None
        assert state.tasks == {}

    def test_last_record_per_key_wins(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.append_task("k", "error", attempts=1, elapsed_s=0.0,
                                error="x", error_type="E")
            journal.append_task("k", "ok", attempts=2, elapsed_s=0.2, result=7)
        state = load_journal(path)
        assert state.tasks["k"]["status"] == "ok"
        assert state.completed_keys() == {"k"}


class TestTruncationTolerance:
    def test_truncated_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.write_header("fp", total=2)
            journal.append_task("k1", "ok", attempts=1, elapsed_s=0.1, result=1)
            journal.append_task("k2", "ok", attempts=1, elapsed_s=0.1, result=2)
        # Simulate a kill -9 mid-write: chop the file mid-final-line.
        raw = path.read_text()
        path.write_text(raw[: raw.rindex('"result"') + 4])

        state = load_journal(path)
        assert state.completed_keys() == {"k1"}
        assert state.corrupt_lines == 1

    def test_garbage_lines_counted_not_fatal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text(
            "\n".join(
                [
                    "not json at all",
                    json.dumps({"kind": "task", "key": "good", "status": "ok"}),
                    json.dumps(["a", "list"]),
                    json.dumps({"kind": "mystery"}),
                ]
            )
        )
        state = load_journal(path)
        assert state.completed_keys() == {"good"}
        assert state.corrupt_lines == 3

    def test_torn_multibyte_tail_is_skipped(self, tmp_path):
        # A kill -9 can land mid-UTF-8-sequence; the loader must treat
        # the torn tail as one corrupt line, not raise UnicodeDecodeError.
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.write_header("fp", total=2)
            journal.append_task("k1", "ok", attempts=1, elapsed_s=0.1, result=1)
        # Unterminated record torn mid-UTF-8-sequence (0xC3 needs a
        # continuation byte that never made it to disk).
        with path.open("ab") as fh:
            fh.write(b'{"kind": "task", "key": "k2", "error": "caf\xc3')

        state = load_journal(path)
        assert state.completed_keys() == {"k1"}
        assert state.corrupt_lines == 1

    def test_append_resumes_existing_file(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with RunJournal(path) as journal:
            journal.write_header("fp", total=2)
            journal.append_task("k1", "ok", attempts=1, elapsed_s=0.1, result=1)
        with RunJournal(path) as journal:
            journal.append_task("k2", "ok", attempts=1, elapsed_s=0.1, result=2)
        assert load_journal(path).completed_keys() == {"k1", "k2"}

"""Tests for WorkUnit identity and deterministic sharding."""

import pytest

from repro.exec import ShardPlan, WorkUnit, check_unique_keys, fingerprint


def units(n):
    return [WorkUnit(key=f"scenario:{i}", payload=i) for i in range(n)]


class TestWorkUnit:
    def test_requires_key(self):
        with pytest.raises(ValueError):
            WorkUnit(key="")

    def test_duplicate_keys_rejected(self):
        us = units(3) + [WorkUnit(key="scenario:1")]
        with pytest.raises(ValueError, match="duplicate"):
            check_unique_keys(us)

    def test_unique_keys_pass(self):
        check_unique_keys(units(10))


class TestFingerprint:
    def test_stable_and_repr_based(self):
        assert fingerprint((1, 2, "x")) == fingerprint((1, 2, "x"))
        assert fingerprint((1, 2)) != fingerprint((2, 1))

    def test_length(self):
        assert len(fingerprint("abc", length=8)) == 8


class TestShardPlan:
    def test_partition_is_disjoint_cover(self):
        us = units(97)
        parts = ShardPlan(shards=4).partition(us)
        assert len(parts) == 4
        recombined = [u for part in parts for u in part]
        assert sorted(u.key for u in recombined) == sorted(u.key for u in us)
        seen = set()
        for part in parts:
            keys = {u.key for u in part}
            assert not keys & seen
            seen |= keys

    def test_assignment_independent_of_order(self):
        us = units(50)
        plan = ShardPlan(shards=3)
        forward = plan.partition(us)
        backward = plan.partition(list(reversed(us)))
        for i in range(3):
            assert {u.key for u in forward[i]} == {u.key for u in backward[i]}

    def test_select_matches_partition(self):
        us = units(40)
        plan = ShardPlan(shards=5)
        parts = plan.partition(us)
        for i in range(5):
            assert plan.select(us, i) == parts[i]

    def test_single_shard_is_identity(self):
        us = units(7)
        assert ShardPlan(shards=1).select(us, 0) == us

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardPlan(shards=0)
        with pytest.raises(ValueError):
            ShardPlan(shards=2).select(units(3), 2)

"""Tests for the engine's cancellation hook and the journal's spec
fingerprint guard (the service's job-cancel and resume-safety paths)."""

import pytest

from repro.exec import (
    CampaignCancelled,
    CampaignEngine,
    EnginePolicy,
    JournalSpecMismatch,
    RunJournal,
    WorkUnit,
    load_journal,
)


def square(payload):
    return payload * payload


def _units(n):
    return [WorkUnit(key=f"u{i}", payload=i) for i in range(n)]


class TestCancellation:
    def test_cancel_before_start_raises(self, tmp_path):
        engine = CampaignEngine(
            square, EnginePolicy(jobs=1), progress=None, cancel=lambda: True,
            journal=tmp_path / "j.jsonl",
        )
        with pytest.raises(CampaignCancelled):
            engine.run(_units(4))

    def test_cancel_mid_campaign_keeps_settled_tasks(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        settled = []

        def cancel_after_two():
            return len(settled) >= 2

        def track(event):
            if event.kind == "task_finished":
                settled.append(event.key)

        engine = CampaignEngine(
            square, EnginePolicy(jobs=1), journal=journal,
            progress=track, cancel=cancel_after_two,
        )
        with pytest.raises(CampaignCancelled):
            engine.run(_units(5))
        state = load_journal(journal)
        assert state.completed_keys() == {"u0", "u1"}

    def test_cancelled_campaign_resumes_to_completion(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        settled = []

        def track(event):
            if event.kind == "task_finished":
                settled.append(event.key)

        engine = CampaignEngine(
            square, EnginePolicy(jobs=1), journal=journal, progress=track,
            cancel=lambda: len(settled) >= 2,
            encode=lambda r: r, decode=lambda r: r,
        )
        with pytest.raises(CampaignCancelled):
            engine.run(_units(5))

        resumed = CampaignEngine(
            square, EnginePolicy(jobs=1), journal=journal, resume=True,
            progress=None, encode=lambda r: r, decode=lambda r: r,
        )
        report = resumed.run(_units(5))
        assert report.results() == [0, 1, 4, 9, 16]
        assert report.summary.cached == 2
        assert report.summary.executed == 3

    def test_pool_mode_observes_cancel(self, tmp_path):
        cancelled = {"flag": False}

        def cancel():
            return cancelled["flag"]

        def flip(event):
            if event.kind == "task_finished":
                cancelled["flag"] = True

        engine = CampaignEngine(
            square, EnginePolicy(jobs=2), journal=tmp_path / "j.jsonl",
            progress=flip, cancel=cancel,
        )
        with pytest.raises(CampaignCancelled):
            engine.run(_units(50))
        state = load_journal(tmp_path / "j.jsonl")
        assert 0 < len(state.completed_keys()) < 50


class TestSpecFingerprint:
    def _run(self, journal, fingerprint, resume=False, n=3):
        engine = CampaignEngine(
            square, EnginePolicy(jobs=1), journal=journal, resume=resume,
            progress=None, spec_fingerprint=fingerprint,
            encode=lambda r: r, decode=lambda r: r,
        )
        return engine.run(_units(n))

    def test_matching_fingerprint_resumes(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        self._run(journal, "spec-a")
        report = self._run(journal, "spec-a", resume=True)
        assert report.summary.cached == 3

    def test_mismatched_fingerprint_refuses_resume(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        self._run(journal, "spec-a")
        with pytest.raises(JournalSpecMismatch) as excinfo:
            self._run(journal, "spec-b", resume=True)
        assert "spec-a" in str(excinfo.value)
        assert "spec-b" in str(excinfo.value)

    def test_legacy_journal_without_fingerprint_is_tolerated(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        with RunJournal(journal) as jh:
            jh.write_header("campaign-fp", total=3)
            jh.append_task("u0", "ok", attempts=1, elapsed_s=0.0, result=0)
        report = self._run(journal, "spec-a", resume=True)
        assert report.summary.cached == 1

    def test_unfingerprinted_engine_ignores_recorded_fingerprint(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        self._run(journal, "spec-a")
        engine = CampaignEngine(
            square, EnginePolicy(jobs=1), journal=journal, resume=True,
            progress=None, encode=lambda r: r, decode=lambda r: r,
        )
        assert engine.run(_units(3)).summary.cached == 3

    def test_fresh_journal_records_fingerprint(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        self._run(journal, "spec-a")
        assert load_journal(journal).header["spec_fingerprint"] == "spec-a"

"""Tests for block dispatch: planning, the worker entry, and the engine's
block execution path staying exactly equivalent to per-unit dispatch."""

import os

import pytest

from repro.exec import (
    CampaignEngine,
    EnginePolicy,
    MemberOutcome,
    WorkUnit,
    execute_block,
    load_journal,
    plan_blocks,
)
from repro.exec.blocks import BLOCK_KEY_PREFIX, block_unit


# ----------------------------------------------------------------------
# module-level (picklable) task functions
# ----------------------------------------------------------------------
def square(payload):
    return payload * payload


def fail_or_square(payload):
    if payload == "poison":
        raise ValueError("bad unit poison")
    return payload * payload


def flaky(payload):
    """Fail until a file-backed counter reaches the configured threshold."""
    counter_path, fail_times = payload
    count = int(open(counter_path).read()) if os.path.exists(counter_path) else 0
    if count < fail_times:
        with open(counter_path, "w") as fh:
            fh.write(str(count + 1))
        raise RuntimeError(f"flaky failure #{count + 1}")
    return "recovered"


def batch_square(payloads):
    return [p * p for p in payloads]


batch_square.__block_worker__ = True


def batch_boom(payloads):
    raise RuntimeError("batch worker down")


batch_boom.__block_worker__ = True


def batch_short(payloads):
    return [0]


batch_short.__block_worker__ = True


def _units(n):
    return [WorkUnit(key=f"k{i}", payload=i) for i in range(n)]


def policy(**kw):
    kw.setdefault("retry_backoff_s", 0.01)
    return EnginePolicy(**kw)


def _comparable(records):
    """The deterministic face of a record list (drop timing/worker)."""
    return [(r.key, r.status, r.result) for r in records]


class TestPlanBlocks:
    def test_partitions_preserve_order(self):
        units = _units(7)
        blocks = plan_blocks(units, 3)
        assert [len(b) for b in blocks] == [3, 3, 1]
        assert [u.key for block in blocks for u in block] == [u.key for u in units]

    def test_block_size_one_is_singletons(self):
        assert [len(b) for b in plan_blocks(_units(4), 1)] == [1, 1, 1, 1]

    def test_oversized_block_is_one_block(self):
        assert [len(b) for b in plan_blocks(_units(3), 100)] == [3]

    def test_invalid_block_size_rejected(self):
        with pytest.raises(ValueError):
            plan_blocks(_units(2), 0)

    def test_policy_rejects_invalid_block_size(self):
        with pytest.raises(ValueError):
            EnginePolicy(block_size=0)


class TestBlockUnit:
    def test_key_carries_prefix_and_fingerprint(self):
        members = _units(3)
        unit = block_unit(square, members, ordinal=2)
        assert unit.key.startswith(f"{BLOCK_KEY_PREFIX}00002:")
        # Different memberships must never collide on key.
        other = block_unit(square, _units(2), ordinal=2)
        assert unit.key != other.key

    def test_payload_preserves_member_order(self):
        members = _units(3)
        unit = block_unit(square, members, ordinal=0)
        fn, payloads = unit.payload
        assert fn is square
        assert [k for k, _ in payloads] == ["k0", "k1", "k2"]


class TestExecuteBlock:
    def test_all_members_succeed_in_order(self):
        payload = (square, [("a", 2), ("b", 3), ("c", 4)])
        outcomes = execute_block(payload)
        assert [o.key for o in outcomes] == ["a", "b", "c"]
        assert [o.result for o in outcomes] == [4, 9, 16]
        assert all(o.ok for o in outcomes)

    def test_member_exception_becomes_error_outcome(self):
        payload = (fail_or_square, [("good", 3), ("bad", "poison"), ("late", 5)])
        outcomes = execute_block(payload)
        assert [o.status for o in outcomes] == ["ok", "error", "ok"]
        bad = outcomes[1]
        assert bad.error_type == "ValueError"
        assert "poison" in bad.message
        assert not bad.ok
        # A failing member never prevents later members from running.
        assert outcomes[2].result == 25

    def test_block_worker_runs_whole_block_in_one_call(self):
        outcomes = execute_block((batch_square, [("a", 2), ("b", 3), ("c", 4)]))
        assert [o.key for o in outcomes] == ["a", "b", "c"]
        assert [o.result for o in outcomes] == [4, 9, 16]
        assert all(o.ok for o in outcomes)

    def test_block_worker_length_mismatch_fails_wholesale(self):
        with pytest.raises(RuntimeError):
            execute_block((batch_short, [("a", 2), ("b", 3)]))

    def test_outcome_is_picklable_dataclass(self):
        import pickle

        outcome = MemberOutcome(key="k", status="ok", result=1)
        assert pickle.loads(pickle.dumps(outcome)) == outcome


class TestEngineBlockExecution:
    def test_serial_blocks_equal_per_unit_records(self):
        units = _units(10)
        per_unit = CampaignEngine(square, policy(), progress=None).run(units)
        blocked = CampaignEngine(
            square, policy(block_size=3), progress=None
        ).run(units)
        assert _comparable(blocked.records) == _comparable(per_unit.records)
        assert blocked.summary.executed == per_unit.summary.executed

    def test_pool_blocks_equal_serial(self):
        units = _units(12)
        serial = CampaignEngine(square, policy(), progress=None).run(units)
        blocked = CampaignEngine(
            square, policy(jobs=2, block_size=4), progress=None
        ).run(units)
        assert _comparable(blocked.records) == _comparable(serial.records)

    def test_failing_member_drains_to_per_unit_retry(self):
        units = [
            WorkUnit(key="good", payload=3),
            WorkUnit(key="bad", payload="poison"),
            WorkUnit(key="also-good", payload=4),
        ]
        report = CampaignEngine(
            fail_or_square, policy(block_size=3, max_retries=1), progress=None
        ).run(units)
        records = report.record_map()
        assert records["good"].ok and records["good"].result == 9
        assert records["also-good"].ok and records["also-good"].result == 16
        assert records["bad"].status == "error"
        assert records["bad"].error.error_type == "ValueError"

    def test_flaky_member_recovers_through_per_unit_path(self, tmp_path):
        counter = tmp_path / "counter"
        units = [
            WorkUnit(key="stable", payload=(str(tmp_path / "never"), 0)),
            WorkUnit(key="flaky", payload=(str(counter), 1)),
        ]
        report = CampaignEngine(
            flaky, policy(block_size=2, max_retries=2), progress=None
        ).run(units)
        records = report.record_map()
        assert records["flaky"].ok
        assert records["flaky"].result == "recovered"
        assert records["stable"].ok

    def test_block_fn_equals_per_unit_records(self):
        units = _units(9)
        per_unit = CampaignEngine(square, policy(), progress=None).run(units)
        batched = CampaignEngine(
            square, policy(block_size=4), progress=None, block_fn=batch_square
        ).run(units)
        assert _comparable(batched.records) == _comparable(per_unit.records)

    def test_failing_block_fn_falls_back_to_per_unit(self):
        units = _units(5)
        report = CampaignEngine(
            square, policy(block_size=2), progress=None, block_fn=batch_boom
        ).run(units)
        assert _comparable(report.records) == [
            (f"k{i}", "ok", i * i) for i in range(5)
        ]

    def test_journal_records_member_units_not_blocks(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        units = _units(5)
        CampaignEngine(
            square, policy(block_size=2), progress=None, journal=journal
        ).run(units)
        state = load_journal(journal)
        assert state.completed_keys() == {u.key for u in units}
        assert not any(k.startswith(BLOCK_KEY_PREFIX) for k in state.completed_keys())

    def test_resume_skips_completed_units_in_block_mode(self, tmp_path):
        journal = tmp_path / "journal.jsonl"
        units = _units(6)
        CampaignEngine(
            square, policy(block_size=2), progress=None, journal=journal
        ).run(units[:4])
        report = CampaignEngine(
            square,
            policy(block_size=2),
            progress=None,
            journal=journal,
            resume=True,
        ).run(units)
        records = report.record_map()
        assert all(records[u.key].ok for u in units)
        assert sum(1 for r in report.records if r.cached) == 4

"""Determinism and resume tests for the engine-backed campaign harness.

The ISSUE-level guarantee: ``run_suite(jobs=N)`` must equal
``run_suite(jobs=1)`` field-for-field (wall-clock aside), and an
interrupted journaled campaign must resume by executing only its missing
runs.
"""

import dataclasses

from repro.exec import load_journal
from repro.experiments import DEFAULT_SEEDS, execute_suite, run_once, run_suite
from repro.experiments.campaign import options_digest, unit_key
from repro.experiments.campaign import CampaignOptions
from repro.obs.cli import render_summary, summarize_path
from repro.obs.trace import ENGINE_TRACE_NAME, MANIFEST_NAME
from repro.sim import ScenarioType

SCENARIOS = (ScenarioType.NOMINAL, ScenarioType.CONGESTED)
SEEDS = (0, 1)


def _strip_wall_time(results):
    return {
        scenario: [dataclasses.replace(o, wall_time_s=0.0) for o in outcomes]
        for scenario, outcomes in results.items()
    }


class TestDeterminism:
    def test_run_once_is_reproducible(self):
        a = run_once(ScenarioType.CONFLICTING, 5)
        b = run_once(ScenarioType.CONFLICTING, 5)
        assert dataclasses.replace(a, wall_time_s=0.0) == dataclasses.replace(
            b, wall_time_s=0.0
        )

    def test_parallel_suite_equals_serial_field_for_field(self):
        serial = run_suite(SCENARIOS, SEEDS, jobs=1, progress=None)
        parallel = run_suite(SCENARIOS, SEEDS, jobs=4, progress=None)
        assert _strip_wall_time(serial) == _strip_wall_time(parallel)

    def test_default_seeds_is_the_papers_15(self):
        assert DEFAULT_SEEDS == tuple(range(15))


class TestUnitIdentity:
    def test_unit_key_stable(self):
        assert unit_key(ScenarioType.NOMINAL, 3) == unit_key(ScenarioType.NOMINAL, 3)

    def test_unit_key_distinguishes_options(self):
        with_rec = unit_key(ScenarioType.NOMINAL, 3, CampaignOptions(use_recovery=True))
        without = unit_key(ScenarioType.NOMINAL, 3, CampaignOptions(use_recovery=False))
        assert with_rec != without

    def test_none_options_digest_matches_defaults(self):
        assert options_digest(None) == options_digest(CampaignOptions())


class TestJournalledCampaign:
    def test_journal_covers_every_run(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        results, report = execute_suite(
            SCENARIOS, SEEDS, jobs=1, journal=journal, progress=None
        )
        state = load_journal(journal)
        expected = {
            unit_key(scenario, seed)
            for scenario in SCENARIOS
            for seed in SEEDS
        }
        assert state.completed_keys() == expected
        assert report.summary.executed == len(expected)

    def test_resume_runs_only_missing_tasks(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        full, _ = execute_suite(
            SCENARIOS, SEEDS, jobs=1, journal=journal, progress=None
        )

        # Interrupt: keep the header and the first two task lines only,
        # truncating the third mid-line as a kill -9 would.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:3]) + "\n" + lines[3][:20])

        resumed, report = execute_suite(
            SCENARIOS, SEEDS, jobs=1, journal=journal, resume=True, progress=None
        )
        assert report.summary.cached == 2
        assert report.summary.executed == 2
        assert _strip_wall_time(resumed) == _strip_wall_time(full)
        # Journaled (cached) outcomes replay bit-identically, including
        # their original wall-clock.
        cached = [r for r in report.records if r.cached]
        assert len(cached) == 2

    def test_traced_campaign_self_certifies(self, tmp_path):
        trace_dir = tmp_path / "traces"
        results, _ = execute_suite(
            SCENARIOS, SEEDS, jobs=1, trace=trace_dir, progress=None
        )
        assert (trace_dir / ENGINE_TRACE_NAME).exists()
        assert (trace_dir / MANIFEST_NAME).exists()
        outcomes = [o for group in results.values() for o in group]
        # Every outcome records where its trace landed.
        assert all(
            o.trace_file and o.trace_file.startswith(str(trace_dir / "units"))
            for o in outcomes
        )
        summary = summarize_path(trace_dir)
        assert summary["mismatches"] == []
        assert summary["consistent_traces"] == summary["checked_traces"] == len(outcomes)
        # Counts in the rendered summary are recomputed from raw events,
        # yet land exactly on what DependabilityMetrics reported.
        counts = summary["counts"]
        assert counts["runs"] == len(outcomes)
        assert counts["iterations_completed"] == sum(o.iterations for o in outcomes)
        assert counts["recovery_activations"] == sum(
            o.recovery_activations for o in outcomes
        )

    def test_traced_parallel_summary_matches_serial_byte_for_byte(self, tmp_path):
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        execute_suite(SCENARIOS, SEEDS, jobs=1, trace=serial_dir, progress=None)
        execute_suite(SCENARIOS, SEEDS, jobs=2, trace=parallel_dir, progress=None)
        serial = render_summary(summarize_path(serial_dir), timing=False)
        parallel = render_summary(summarize_path(parallel_dir), timing=False)
        assert serial == parallel
        # Same per-unit trace files regardless of worker count.
        assert sorted(p.name for p in (serial_dir / "units").iterdir()) == sorted(
            p.name for p in (parallel_dir / "units").iterdir()
        )

    def test_resume_under_parallel_execution(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        full, _ = execute_suite(
            SCENARIOS, SEEDS, jobs=1, journal=journal, progress=None
        )
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:2]) + "\n")

        resumed, report = execute_suite(
            SCENARIOS, SEEDS, jobs=2, journal=journal, resume=True, progress=None
        )
        assert report.summary.cached == 1
        assert _strip_wall_time(resumed) == _strip_wall_time(full)

"""Round-trip tests for the plain-dict spec constructors shared by the
CLIs and the service's JSON payloads: a spec that crosses a JSON
boundary must produce the *same* options object — same digests, same
journal keys, same reports — as one built in-process."""

import json

import pytest

from repro.experiments.campaign import (
    CampaignOptions,
    RunOutcome,
    build_campaign_report,
    campaign_spec_fingerprint,
    options_digest,
    write_campaign_report,
)
from repro.llm.surrogate import SurrogateConfig
from repro.search.driver import SearchConfig
from repro.sim.scenario import ScenarioType


def json_round_trip(data):
    """What an HTTP submission does to a payload."""
    return json.loads(json.dumps(data))


class TestCampaignOptionsRoundTrip:
    def test_defaults_round_trip(self):
        options = CampaignOptions()
        assert CampaignOptions.from_dict(options.to_dict()) == options

    def test_full_round_trip_through_json(self):
        options = CampaignOptions(
            use_recovery=False,
            recovery_strategy="replan",
            planner="rule",
            surrogate_config=SurrogateConfig(hesitation_rate=0.2),
            monitor_horizon_s=2.0,
            halt_on_violation=True,
            deadline_ms=100.0,
            breaker=True,
            crash_window=(10, 20),
            continue_on_role_error=True,
        )
        rebuilt = CampaignOptions.from_dict(json_round_trip(options.to_dict()))
        assert rebuilt == options
        assert options_digest(rebuilt) == options_digest(options)

    def test_json_integers_coerce_to_float_fields(self):
        # JSON has one number type: {"deadline_ms": 100} must equal a
        # CLI-built CampaignOptions(deadline_ms=100.0) digest-for-digest.
        rebuilt = CampaignOptions.from_dict(
            {"deadline_ms": 100, "monitor_horizon_s": 1}
        )
        direct = CampaignOptions(deadline_ms=100.0, monitor_horizon_s=1.0)
        assert rebuilt == direct
        assert repr(rebuilt) == repr(direct)
        assert options_digest(rebuilt) == options_digest(direct)
        assert campaign_spec_fingerprint(rebuilt) == campaign_spec_fingerprint(direct)

    def test_surrogate_config_dict_is_normalized(self):
        rebuilt = CampaignOptions.from_dict(
            {"surrogate_config": {"hesitation_rate": 0, "decision_period_ticks": 5}}
        )
        direct = CampaignOptions(
            surrogate_config=SurrogateConfig(
                hesitation_rate=0.0, decision_period_ticks=5
            )
        )
        assert options_digest(rebuilt) == options_digest(direct)

    def test_crash_window_list_becomes_tuple(self):
        rebuilt = CampaignOptions.from_dict({"crash_window": [10, 20]})
        assert rebuilt.crash_window == (10, 20)

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown campaign option"):
            CampaignOptions.from_dict({"deadline_msec": 100})

    def test_unknown_surrogate_key_raises(self):
        with pytest.raises(ValueError, match="unknown SurrogateConfig"):
            CampaignOptions.from_dict({"surrogate_config": {"nope": 1}})

    def test_bad_crash_window_raises(self):
        with pytest.raises(ValueError, match="crash_window"):
            CampaignOptions.from_dict({"crash_window": [1, 2, 3]})

    def test_none_and_empty_give_defaults(self):
        assert CampaignOptions.from_dict(None) == CampaignOptions()
        assert CampaignOptions.from_dict({}) == CampaignOptions()


class TestSearchConfigRoundTrip:
    def test_round_trip_through_json(self):
        config = SearchConfig(
            family="congested", mode="explore", seed=7, budget=12,
            batch=4, sampler="grid", grid_points=2, bins=3, jobs=2,
            timeout_s=30.0,
        )
        rebuilt = SearchConfig.from_dict(json_round_trip(config.to_dict()))
        assert rebuilt == config

    def test_json_number_coercion(self):
        rebuilt = SearchConfig.from_dict(
            {"family": "congested", "scale": 1, "cooling": 1, "seed": 3.0}
        )
        direct = SearchConfig(family="congested", scale=1.0, cooling=1.0, seed=3)
        assert rebuilt == direct
        assert repr(rebuilt) == repr(direct)

    def test_unknown_key_raises(self):
        with pytest.raises(ValueError, match="unknown SearchConfig"):
            SearchConfig.from_dict({"family": "congested", "budge": 5})

    def test_validation_still_runs(self):
        with pytest.raises(ValueError, match="unknown mode"):
            SearchConfig.from_dict({"family": "congested", "mode": "wander"})


def _outcome(seed, wall=0.5, trace=None):
    return RunOutcome(
        scenario="nominal", seed=seed, monitor_flagged=False,
        safety_flag_count=0, collision=False, clearance_time=3.0,
        gridlocked=False, timed_out=False, recovery_activations=0,
        faults_injected=0, comfort_violations=0, performance_flags=0,
        iterations=30, wall_time_s=wall, trace_file=trace,
        stl_robustness=0.5,
    )


class TestCanonicalReport:
    def test_nondeterministic_fields_excluded(self):
        results = {ScenarioType.NOMINAL: [_outcome(0, wall=1.23, trace="/tmp/a")]}
        report = build_campaign_report(results)
        row = report["scenarios"]["nominal"]["runs"][0]
        assert "wall_time_s" not in row
        assert "trace_file" not in row
        assert row["seed"] == 0

    def test_byte_identical_across_wall_times(self, tmp_path):
        options = CampaignOptions.from_dict({"deadline_ms": 100})
        a = {ScenarioType.NOMINAL: [_outcome(0, wall=0.1), _outcome(1, wall=9.9)]}
        b = {ScenarioType.NOMINAL: [_outcome(0, wall=7.7, trace="/x"), _outcome(1)]}
        path_a = write_campaign_report(a, tmp_path / "a.json", options)
        path_b = write_campaign_report(b, tmp_path / "b.json", options)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_report_carries_spec_fingerprint_and_options(self):
        options = CampaignOptions(breaker=True)
        report = build_campaign_report(
            {ScenarioType.NOMINAL: [_outcome(0)]}, options
        )
        assert report["spec_fingerprint"] == campaign_spec_fingerprint(options)
        assert report["options"]["breaker"] is True
        assert report["total_runs"] == 1

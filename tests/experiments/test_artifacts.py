"""Tests for the remaining experiment artifact generators."""

import pytest

from repro.experiments import recovery, runner, table1
from repro.experiments.recovery import CounterfactualPair
from repro.sim import ScenarioType


class TestTable1:
    def test_renders_all_eight_channels(self):
        text = table1.generate(seed=0)
        for channel in table1.PAPER_TABLE1:
            assert channel in text
        assert "Live rendering" in text

    def test_deterministic(self):
        assert table1.generate(seed=1) == table1.generate(seed=1)

    def test_examples_are_live(self):
        # The rendering column carries actual values, not placeholders.
        text = table1.generate(seed=0)
        assert "m/s" in text


class TestRecoveryCounterfactuals:
    @pytest.fixture(scope="class")
    def pairs(self):
        return recovery.measure(
            scenarios=(ScenarioType.CONFLICTING,), seeds=(2, 3)
        )

    def test_pair_structure(self, pairs):
        assert len(pairs) == 2
        for pair in pairs:
            assert pair.with_recovery.seed == pair.without_recovery.seed
            assert pair.without_recovery.recovery_activations == 0

    def test_prevented_semantics(self):
        from repro.experiments.campaign import RunOutcome

        def outcome(collision, recoveries):
            return RunOutcome(
                scenario="x", seed=0, monitor_flagged=True, safety_flag_count=1,
                collision=collision, clearance_time=None, gridlocked=False,
                timed_out=False, recovery_activations=recoveries, faults_injected=0,
                comfort_violations=0, performance_flags=0, iterations=1, wall_time_s=0.0,
            )

        saved = CounterfactualPair(
            ScenarioType.NOMINAL, 0, outcome(False, 3), outcome(True, 0)
        )
        assert saved.prevented and not saved.failed
        failed = CounterfactualPair(
            ScenarioType.NOMINAL, 0, outcome(True, 3), outcome(True, 0)
        )
        assert failed.failed and not failed.prevented
        idle = CounterfactualPair(
            ScenarioType.NOMINAL, 0, outcome(False, 0), outcome(False, 0)
        )
        assert not idle.prevented and not idle.recovery_engaged

    def test_generate_renders(self, pairs):
        text = recovery.generate(
            scenarios=(ScenarioType.CONFLICTING,), pairs=pairs
        )
        assert "Recovery effectiveness" in text
        assert "prevention rate" in text


class TestRunner:
    def test_full_runner_small(self, tmp_path):
        report = runner.run_evaluation(seeds=(0,), out_dir=tmp_path)
        assert "Table II" in report
        assert "Fig. 4" in report
        assert "Gridlock" in report
        assert "Per-run averages" in report
        assert (tmp_path / "evaluation.txt").read_text() == report

"""Smoke tests for the degradation ablation and its campaign plumbing."""

from repro.experiments.ablations import degradation_ablation
from repro.experiments.campaign import CampaignOptions, run_once
from repro.sim import ScenarioType


class TestCampaignResilienceOptions:
    def test_breaker_arm_degrades_and_recovers(self):
        outcome = run_once(
            ScenarioType.NOMINAL,
            0,
            CampaignOptions(breaker=True, crash_window=(20, 45)),
        )
        assert outcome.degraded_entered >= 1
        assert outcome.degraded_exited >= 1
        assert outcome.generator_retries >= 1
        assert outcome.cleared and not outcome.collision

    def test_tolerate_arm_leans_on_action_hold(self):
        outcome = run_once(
            ScenarioType.NOMINAL,
            0,
            CampaignOptions(crash_window=(20, 45), continue_on_role_error=True),
        )
        assert outcome.degraded_entered == 0
        assert outcome.action_holds >= 1
        assert not outcome.collision

    def test_plain_run_reports_no_resilience_activity(self):
        outcome = run_once(ScenarioType.NOMINAL, 0, CampaignOptions())
        assert outcome.degraded_entered == 0
        assert outcome.action_holds == 0
        assert outcome.deadline_overruns == 0


class TestDegradationAblation:
    def test_table_renders_both_arms(self):
        text = degradation_ablation(seeds=(0,), scenarios=(ScenarioType.NOMINAL,))
        assert "tolerate" in text
        assert "breaker" in text
        assert "Outage policy" in text
        assert "Breaker entries / run" in text

"""Block-dispatched campaigns must be indistinguishable from per-unit ones.

This is the batched-execution analog of ``test_parallel_campaign.py``'s
jobs=1 vs jobs=N pin: ``execute_suite(block_size=K)`` must produce the
same outcomes field-for-field (wall-clock aside), a byte-identical
report.json, and a journal keyed by the same per-unit keys as
``block_size=1``.
"""

import dataclasses

from repro.exec import load_journal
from repro.exec.blocks import BLOCK_KEY_PREFIX
from repro.experiments import execute_suite
from repro.experiments.campaign import unit_key, write_campaign_report
from repro.sim import ScenarioType

SCENARIOS = (ScenarioType.NOMINAL, ScenarioType.CONGESTED)
SEEDS = (0, 1)


def _strip_wall_time(results):
    return {
        scenario: [dataclasses.replace(o, wall_time_s=0.0) for o in outcomes]
        for scenario, outcomes in results.items()
    }


class TestBlockDeterminism:
    def test_block_suite_equals_per_unit_field_for_field(self):
        per_unit, _ = execute_suite(SCENARIOS, SEEDS, jobs=1, progress=None)
        blocked, _ = execute_suite(
            SCENARIOS, SEEDS, jobs=1, block_size=3, progress=None
        )
        assert _strip_wall_time(blocked) == _strip_wall_time(per_unit)

    def test_pool_block_suite_equals_per_unit(self):
        per_unit, _ = execute_suite(SCENARIOS, SEEDS, jobs=1, progress=None)
        blocked, _ = execute_suite(
            SCENARIOS, SEEDS, jobs=2, block_size=2, progress=None
        )
        assert _strip_wall_time(blocked) == _strip_wall_time(per_unit)

    def test_block_report_bytes_identical(self, tmp_path):
        per_unit, _ = execute_suite(SCENARIOS, SEEDS, jobs=1, progress=None)
        blocked, _ = execute_suite(
            SCENARIOS, SEEDS, jobs=1, block_size=4, progress=None
        )
        base = write_campaign_report(per_unit, tmp_path / "base.json")
        block = write_campaign_report(blocked, tmp_path / "block.json")
        assert block.read_bytes() == base.read_bytes()

    def test_block_journal_keyed_per_unit(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        execute_suite(
            SCENARIOS, SEEDS, jobs=1, block_size=2, journal=journal, progress=None
        )
        completed = load_journal(journal).completed_keys()
        assert completed == {
            unit_key(scenario, seed) for scenario in SCENARIOS for seed in SEEDS
        }
        assert not any(k.startswith(BLOCK_KEY_PREFIX) for k in completed)

    def test_block_resume_runs_only_missing_tasks(self, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        execute_suite(
            SCENARIOS, (0,), jobs=1, block_size=2, journal=journal, progress=None
        )
        results, report = execute_suite(
            SCENARIOS,
            SEEDS,
            jobs=1,
            block_size=2,
            journal=journal,
            resume=True,
            progress=None,
        )
        assert {s: len(o) for s, o in results.items()} == {
            scenario: len(SEEDS) for scenario in SCENARIOS
        }
        cached = sum(1 for r in report.records if r.cached)
        assert cached == len(SCENARIOS)  # the seed-0 runs came from the journal

"""Tests for campaign wiring and experiment generators (small seed sets)."""

import pytest

from repro.core import RoleKind
from repro.experiments import CampaignOptions, build_controller, run_once, run_suite
from repro.experiments import fig4, gridlock, table2
from repro.sim import ScenarioType, build_scenario


class TestBuildController:
    def test_role_stack_matches_paper_order(self):
        controller = build_controller(build_scenario(ScenarioType.NOMINAL, 0))
        kinds = [s.role.kind for s in controller.graph.execution_order()]
        assert kinds == [
            RoleKind.GENERATOR,
            RoleKind.SAFETY_MONITOR,
            RoleKind.SECURITY_ASSESSOR,
            RoleKind.FAULT_INJECTOR,
            RoleKind.PERFORMANCE_ORACLE,
            RoleKind.RECOVERY_PLANNER,
        ]

    def test_recovery_can_be_ablated(self):
        controller = build_controller(
            build_scenario(ScenarioType.NOMINAL, 0), CampaignOptions(use_recovery=False)
        )
        kinds = {s.role.kind for s in controller.graph.execution_order()}
        assert RoleKind.RECOVERY_PLANNER not in kinds

    def test_rule_planner_option(self):
        controller = build_controller(
            build_scenario(ScenarioType.NOMINAL, 0), CampaignOptions(planner="rule")
        )
        generator = controller.graph.get("Generator").role
        assert type(generator).__name__ == "RuleBasedPlannerRole"

    def test_unknown_planner_rejected(self):
        with pytest.raises(ValueError):
            build_controller(
                build_scenario(ScenarioType.NOMINAL, 0), CampaignOptions(planner="magic")
            )

    def test_injector_shares_environment_pipeline(self):
        controller = build_controller(build_scenario(ScenarioType.GHOST_ATTACK, 0))
        injector = controller.graph.get("FaultInjector").role
        assert injector.pipeline is controller.environment.pipeline


class TestRunOnce:
    def test_outcome_fields_consistent(self):
        outcome = run_once(ScenarioType.NOMINAL, 0)
        assert outcome.scenario == "nominal"
        assert outcome.seed == 0
        assert outcome.iterations > 0
        assert outcome.monitor_flagged == (outcome.safety_flag_count > 0)
        assert outcome.cleared == (outcome.clearance_time is not None)

    def test_deterministic_across_calls(self):
        import dataclasses

        a = run_once(ScenarioType.CONGESTED, 3)
        b = run_once(ScenarioType.CONGESTED, 3)
        # Wall-clock time is the only legitimately nondeterministic field.
        assert dataclasses.replace(a, wall_time_s=0.0) == dataclasses.replace(b, wall_time_s=0.0)

    def test_attack_scenario_injects_faults(self):
        outcome = run_once(ScenarioType.GHOST_ATTACK, 0)
        assert outcome.faults_injected > 0

    def test_nominal_injects_nothing(self):
        outcome = run_once(ScenarioType.NOMINAL, 0)
        assert outcome.faults_injected == 0


class TestSuiteAndGenerators:
    @pytest.fixture(scope="class")
    def small_suite(self):
        return run_suite(table2.SCENARIO_ORDER, seeds=(0, 1))

    def test_suite_shape(self, small_suite):
        assert set(small_suite) == set(table2.SCENARIO_ORDER)
        assert all(len(v) == 2 for v in small_suite.values())

    def test_table2_renders_all_scenarios(self, small_suite):
        text = table2.generate(results=small_suite)
        assert "Table II" in text
        for label in ("Nominal", "Ghost Obstacle Attack", "Overall Avg."):
            assert label in text
        assert "86.7%" in text  # paper reference column present

    def test_fig4_renders_table_and_chart(self, small_suite):
        text = fig4.generate(results=small_suite)
        assert "Fig. 4" in text
        assert "#" in text  # bar chart marks
        assert "Mean clearance" in text

    def test_gridlock_report(self, small_suite):
        text = gridlock.generate(outcomes=small_suite[ScenarioType.SPOOF_ATTACK])
        assert "Gridlocked runs (measured)" in text
        assert "(paper)" in text

    def test_fig4_ordering_helper(self, small_suite):
        from repro.analysis import aggregate_suite

        aggregates = aggregate_suite(small_suite)
        # The helper returns a bool without raising.
        assert fig4.ordering_holds(aggregates) in (True, False)

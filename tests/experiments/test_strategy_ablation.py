"""Tests for the recovery-strategy campaign option and ablation."""

import pytest

from repro.experiments import CampaignOptions, build_controller, run_once
from repro.sim import ScenarioType, build_scenario


class TestRecoveryStrategyOption:
    def test_replan_strategy_wires_replan_role(self):
        controller = build_controller(
            build_scenario(ScenarioType.NOMINAL, 0),
            CampaignOptions(recovery_strategy="replan"),
        )
        role = controller.graph.get("RecoveryPlanner").role
        assert type(role).__name__ == "ReplanRecovery"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="recovery strategy"):
            build_controller(
                build_scenario(ScenarioType.NOMINAL, 0),
                CampaignOptions(recovery_strategy="teleport"),
            )

    def test_replan_runs_end_to_end(self):
        outcome = run_once(
            ScenarioType.GHOST_ATTACK, 0, CampaignOptions(recovery_strategy="replan")
        )
        assert outcome.iterations > 10
        assert outcome.recovery_activations >= 0

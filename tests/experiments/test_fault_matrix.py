"""Tests for the fault-robustness matrix experiment."""

import pytest

from repro.experiments.fault_matrix import (
    FAULT_FACTORIES,
    PresetFaultInjector,
    _run,
    generate,
)
from repro.roles import FaultPipeline, GhostObstacleFault
from repro.sim import ScenarioType


class TestPresetInjector:
    def test_keeps_fault_armed(self, ):
        pipeline = FaultPipeline(seed=0)
        injector = PresetFaultInjector(pipeline, lambda: GhostObstacleFault())
        from repro.core import DependabilityMetrics, RoleContext, StateManager

        context = RoleContext(
            state=StateManager(), metrics=DependabilityMetrics(), iteration=0, time=0.0
        )
        injector.execute(context)
        assert "ghost_obstacle" in pipeline.active_kinds
        pipeline.disarm("ghost_obstacle")
        injector.execute(context)
        assert "ghost_obstacle" in pipeline.active_kinds  # re-armed


class TestMatrix:
    def test_library_covers_all_fault_kinds(self):
        assert set(FAULT_FACTORIES) == {
            "none",
            "sensor_noise",
            "dropout",
            "latency",
            "gps_bias",
            "ghost_obstacle",
            "trajectory_spoof",
        }

    def test_clean_run_vs_permanent_ghost(self):
        clean = _run(ScenarioType.NOMINAL, 0, None)
        ghosted = _run(ScenarioType.NOMINAL, 0, FAULT_FACTORIES["ghost_obstacle"])
        assert clean["cleared"] and not clean["flagged"]
        # A permanent phantom roadblock: flagged and never crossed.
        assert ghosted["flagged"]
        assert not ghosted["cleared"]

    def test_generate_renders_every_cell(self):
        text = generate(seeds=(0,), scenarios=(ScenarioType.NOMINAL,))
        for label in FAULT_FACTORIES:
            assert label in text
        assert "Fault-robustness matrix" in text

"""Tests for the scenario registry and builder determinism guarantees.

The search subsystem replays counterexamples through runtime-registered
builders and fans evaluations over spawned worker processes, so the
registry error surface and cross-process determinism are load-bearing.
"""

import multiprocessing
import pickle

import pytest

from repro.sim import ScenarioType, build_scenario
from repro.sim.scenario import (
    known_scenarios,
    register_scenario,
    spec_to_dict,
    unregister_scenario,
)


def _nominal(seed: int):
    return build_scenario(ScenarioType.NOMINAL, seed)


def _spawn_build(name, seed):
    """Spawn-pool worker: build a scenario and return its dict form."""
    return spec_to_dict(build_scenario(name, seed))


class TestRegistry:
    def test_unknown_name_lists_known_scenarios(self):
        with pytest.raises(ValueError) as excinfo:
            build_scenario("no_such_scenario", 0)
        message = str(excinfo.value)
        for scenario_type in ScenarioType:
            assert scenario_type.value in message

    def test_unknown_name_is_not_a_key_error(self):
        with pytest.raises(ValueError):
            build_scenario("no_such_scenario", 0)

    def test_register_and_build(self):
        register_scenario("custom-nominal", _nominal)
        try:
            assert "custom-nominal" in known_scenarios()
            spec = build_scenario("custom-nominal", 3)
            assert spec_to_dict(spec) == spec_to_dict(_nominal(3))
        finally:
            unregister_scenario("custom-nominal")
        assert "custom-nominal" not in known_scenarios()

    def test_reregistration_requires_overwrite(self):
        register_scenario("custom-nominal", _nominal)
        try:
            with pytest.raises(ValueError):
                register_scenario("custom-nominal", _nominal)
            register_scenario("custom-nominal", _nominal, overwrite=True)
        finally:
            unregister_scenario("custom-nominal")

    def test_cannot_shadow_builtin(self):
        with pytest.raises(ValueError):
            register_scenario(ScenarioType.NOMINAL.value, _nominal)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_scenario("", _nominal)


class TestDeterminism:
    @pytest.mark.parametrize("scenario_type", list(ScenarioType))
    def test_in_process_determinism(self, scenario_type):
        a = spec_to_dict(build_scenario(scenario_type, 5))
        b = spec_to_dict(build_scenario(scenario_type, 5))
        assert a == b

    @pytest.mark.parametrize("scenario_type", list(ScenarioType))
    def test_spec_pickle_round_trip(self, scenario_type):
        spec = build_scenario(scenario_type, 5)
        clone = pickle.loads(pickle.dumps(spec))
        assert spec_to_dict(clone) == spec_to_dict(spec)

    def test_spawned_worker_matches_parent(self):
        """A spawned worker (fresh interpreter, as used by the campaign
        engine on non-fork platforms) must build byte-for-byte the same
        scenarios the parent does."""
        jobs = [(t.value, seed) for t in ScenarioType for seed in (0, 3)]
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(1) as pool:
            remote = pool.starmap(_spawn_build, jobs)
        local = [_spawn_build(name, seed) for name, seed in jobs]
        assert remote == local

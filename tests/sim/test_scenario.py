"""Tests for scenario builders and attack plans."""

import pytest

from repro.sim import (
    SCENARIO_BUILDERS,
    AttackKind,
    AttackPlan,
    ScenarioType,
    build_scenario,
)


class TestBuilders:
    def test_every_type_has_builder(self):
        assert set(SCENARIO_BUILDERS) == set(ScenarioType)

    @pytest.mark.parametrize("scenario_type", list(ScenarioType))
    def test_builders_are_deterministic(self, scenario_type):
        a = build_scenario(scenario_type, 7)
        b = build_scenario(scenario_type, 7)
        assert a.ego_start_speed == b.ego_start_speed
        assert [(e.time, e.approach, e.movement, e.speed, e.advance) for e in a.spawn_schedule] == [
            (e.time, e.approach, e.movement, e.speed, e.advance) for e in b.spawn_schedule
        ]
        assert a.attack == b.attack

    @pytest.mark.parametrize("scenario_type", list(ScenarioType))
    def test_seeds_vary_traffic(self, scenario_type):
        a = build_scenario(scenario_type, 0)
        b = build_scenario(scenario_type, 1)
        assert a.ego_start_speed != b.ego_start_speed or a.spawn_schedule != b.spawn_schedule

    def test_congested_denser_than_nominal(self):
        nominal = build_scenario(ScenarioType.NOMINAL, 0)
        congested = build_scenario(ScenarioType.CONGESTED, 0)
        assert len(congested.spawn_schedule) > len(nominal.spawn_schedule)

    def test_attack_scenarios_carry_plans(self):
        ghost = build_scenario(ScenarioType.GHOST_ATTACK, 0)
        spoof = build_scenario(ScenarioType.SPOOF_ATTACK, 0)
        assert ghost.attack.kind is AttackKind.GHOST_OBSTACLE
        assert spoof.attack.kind is AttackKind.TRAJECTORY_SPOOF
        assert build_scenario(ScenarioType.NOMINAL, 0).attack.kind is AttackKind.NONE

    def test_pedestrian_scenario_has_spec(self):
        spec = build_scenario(ScenarioType.PEDESTRIAN, 0)
        assert spec.pedestrian is not None
        assert spec.pedestrian.speed > 0

    def test_pedestrian_direction_varies_with_seed(self):
        directions = {build_scenario(ScenarioType.PEDESTRIAN, s).pedestrian.from_east for s in range(10)}
        assert directions == {True, False}

    def test_spoof_has_extended_stream(self):
        spoof = build_scenario(ScenarioType.SPOOF_ATTACK, 0)
        assert max(e.time for e in spoof.spawn_schedule) > 30.0
        assert spoof.timeout_s == 60.0

    def test_ghost_includes_tailgater(self):
        ghost = build_scenario(ScenarioType.GHOST_ATTACK, 0)
        assert any(e.tailgater for e in ghost.spawn_schedule)

    def test_name_property(self):
        assert build_scenario(ScenarioType.NOMINAL, 0).name == "nominal"


class TestAttackPlan:
    def test_inactive_plan(self):
        plan = AttackPlan()
        assert not plan.is_active_plan
        assert not plan.active_at(5.0)

    def test_window_semantics(self):
        plan = AttackPlan(kind=AttackKind.GHOST_OBSTACLE, start_time=2.0, duration=3.0)
        assert not plan.active_at(1.9)
        assert plan.active_at(2.0)
        assert plan.active_at(4.9)
        assert not plan.active_at(5.0)

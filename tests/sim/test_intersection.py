"""Tests for the intersection map and route geometry."""

import math

import pytest

from repro.geom import Vec2
from repro.sim import (
    APPROACH_LENGTH,
    INTERSECTION_HALF_SIZE,
    LANE_OFFSET,
    Approach,
    IntersectionMap,
    Movement,
    in_intersection_box,
)


class TestRouteGeometry:
    def test_all_twelve_routes_exist(self, intersection_map):
        assert len(intersection_map.routes) == 12

    def test_route_starts_on_approach_lane(self, intersection_map):
        route = intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)
        start = route.point_at(0.0)
        assert start.x == pytest.approx(LANE_OFFSET)
        assert start.y == pytest.approx(-(INTERSECTION_HALF_SIZE + APPROACH_LENGTH))

    def test_straight_route_is_straight(self, intersection_map):
        route = intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)
        for s in (0.0, 30.0, 60.0, 80.0):
            assert route.point_at(s).x == pytest.approx(LANE_OFFSET, abs=1e-9)
            assert route.heading_at(s) == pytest.approx(math.pi / 2, abs=1e-6)

    def test_right_turn_exits_east(self, intersection_map):
        route = intersection_map.route(Approach.SOUTH, Movement.RIGHT)
        end = route.point_at(route.length)
        assert end.x > INTERSECTION_HALF_SIZE
        assert end.y == pytest.approx(-LANE_OFFSET, abs=0.1)
        assert route.heading_at(route.length) == pytest.approx(0.0, abs=0.05)

    def test_left_turn_exits_west(self, intersection_map):
        route = intersection_map.route(Approach.SOUTH, Movement.LEFT)
        end = route.point_at(route.length)
        assert end.x < -INTERSECTION_HALF_SIZE
        assert end.y == pytest.approx(LANE_OFFSET, abs=0.1)

    def test_rotated_approaches_are_consistent(self, intersection_map):
        # From-north straight drives south along x = -LANE_OFFSET.
        route = intersection_map.route(Approach.NORTH, Movement.STRAIGHT)
        mid = route.point_at(route.length / 2)
        assert mid.x == pytest.approx(-LANE_OFFSET, abs=0.1)
        assert route.heading_at(10.0) == pytest.approx(-math.pi / 2, abs=1e-6)

    def test_entry_and_exit_bracket_the_box(self, intersection_map):
        for route in intersection_map.routes:
            assert 0.0 < route.entry_s < route.exit_s < route.length
            inside = route.point_at((route.entry_s + route.exit_s) / 2)
            assert in_intersection_box(inside)
            assert not in_intersection_box(route.point_at(route.entry_s - 2.0))

    def test_entry_distance_matches_approach_length(self, intersection_map):
        route = intersection_map.route(Approach.WEST, Movement.STRAIGHT)
        assert route.entry_s == pytest.approx(APPROACH_LENGTH, abs=1.0)

    def test_point_at_clamps(self, intersection_map):
        route = intersection_map.route(Approach.EAST, Movement.LEFT)
        assert route.point_at(-5.0) == route.point_at(0.0)
        assert route.point_at(route.length + 10.0) == route.point_at(route.length)

    def test_arc_length_parameterization_is_monotone(self, intersection_map):
        route = intersection_map.route(Approach.SOUTH, Movement.LEFT)
        previous = route.point_at(0.0)
        for i in range(1, 40):
            s = i * route.length / 40
            point = route.point_at(s)
            step = point.distance_to(previous)
            assert step > 0.0
            previous = point

    def test_arc_length_accuracy(self, intersection_map):
        # Walking 10 m along the route moves ~10 m of geometry.
        route = intersection_map.route(Approach.SOUTH, Movement.RIGHT)
        a, b = route.point_at(20.0), route.point_at(30.0)
        assert a.distance_to(b) == pytest.approx(10.0, rel=0.02)

    def test_waypoints_ahead(self, intersection_map):
        route = intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)
        points = route.waypoints_ahead(10.0, count=3, spacing=5.0)
        assert len(points) == 3
        assert points[0].distance_to(route.point_at(15.0)) < 0.3


class TestConflicts:
    def test_crossing_straights_conflict(self, intersection_map):
        south = intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)
        east = intersection_map.route(Approach.EAST, Movement.STRAIGHT)
        assert intersection_map.conflict(south, east)

    def test_opposite_straights_do_not_conflict(self, intersection_map):
        south = intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)
        north = intersection_map.route(Approach.NORTH, Movement.STRAIGHT)
        assert not intersection_map.conflict(south, north)

    def test_oncoming_left_conflicts_with_straight(self, intersection_map):
        south = intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)
        north_left = intersection_map.route(Approach.NORTH, Movement.LEFT)
        assert intersection_map.conflict(south, north_left)

    def test_conflict_is_symmetric(self, intersection_map):
        routes = intersection_map.routes
        for a in routes:
            for b in routes:
                assert intersection_map.conflict(a, b) == intersection_map.conflict(b, a)

    def test_same_approach_never_conflicts(self, intersection_map):
        a = intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)
        b = intersection_map.route(Approach.SOUTH, Movement.LEFT)
        assert not intersection_map.conflict(a, b)


class TestCrosswalk:
    def test_south_crosswalk_crosses_ego_lane(self, intersection_map):
        crosswalk = intersection_map.south_crosswalk
        xs = [crosswalk.point_at(s).x for s in (0.0, crosswalk.length)]
        assert min(xs) < LANE_OFFSET < max(xs)

    def test_point_at_clamps(self, intersection_map):
        crosswalk = intersection_map.south_crosswalk
        assert crosswalk.point_at(-1.0) == crosswalk.start
        assert crosswalk.point_at(crosswalk.length + 1.0) == crosswalk.end


class TestBoxPredicate:
    def test_centre_inside(self):
        assert in_intersection_box(Vec2(0, 0))

    def test_margin(self):
        outside = Vec2(INTERSECTION_HALF_SIZE + 0.5, 0)
        assert not in_intersection_box(outside)
        assert in_intersection_box(outside, margin=1.0)

"""Tests for the maneuver vocabulary and longitudinal executor."""

import pytest

from repro.sim import Approach, LongitudinalLimits, Maneuver, ManeuverExecutor, Movement


@pytest.fixture
def route(intersection_map):
    return intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)


@pytest.fixture
def executor():
    return ManeuverExecutor()


class TestSpeedTracking:
    def test_proceed_accelerates_toward_cruise(self, executor, route):
        accel = executor.acceleration_for(Maneuver.PROCEED, 4.0, 10.0, route)
        assert accel > 0.0

    def test_proceed_holds_at_cruise(self, executor, route):
        accel = executor.acceleration_for(Maneuver.PROCEED, 8.0, 10.0, route)
        assert accel == pytest.approx(0.0, abs=0.1)

    def test_proceed_slows_when_too_fast(self, executor, route):
        accel = executor.acceleration_for(Maneuver.PROCEED, 12.0, 10.0, route)
        assert accel < 0.0

    def test_cautious_target_is_lower(self, executor, route):
        cautious = executor.acceleration_for(Maneuver.PROCEED_CAUTIOUSLY, 6.0, 10.0, route)
        assert cautious < 0.0  # 6 > 4 cautious target

    def test_accelerate_exceeds_cruise(self, executor, route):
        accel = executor.acceleration_for(Maneuver.ACCELERATE, 8.5, 10.0, route)
        assert accel > 0.0

    def test_acceleration_bounded(self, executor, route):
        limits = executor.limits
        for maneuver in Maneuver:
            for speed in (0.0, 4.0, 8.0, 12.0):
                accel = executor.acceleration_for(maneuver, speed, 10.0, route)
                assert -limits.max_deceleration - 1e-9 <= accel <= limits.max_acceleration + 1e-9


class TestStopping:
    def test_wait_brakes_to_stop_line(self, executor, route):
        # 10 m before the entry at 8 m/s: needs roughly v^2/2d braking.
        s = route.entry_s - 10.0
        accel = executor.acceleration_for(Maneuver.WAIT, 8.0, s, route)
        assert accel == pytest.approx(-(8.0 ** 2) / (2.0 * 9.0), rel=0.05)

    def test_wait_holds_when_stopped(self, executor, route):
        accel = executor.acceleration_for(Maneuver.WAIT, 0.0, route.entry_s - 5.0, route)
        assert accel == 0.0

    def test_wait_past_line_brakes_comfortably(self, executor, route):
        accel = executor.acceleration_for(Maneuver.WAIT, 5.0, route.entry_s + 2.0, route)
        assert accel == pytest.approx(-executor.limits.comfortable_deceleration)

    def test_emergency_brake_is_max(self, executor, route):
        accel = executor.acceleration_for(Maneuver.EMERGENCY_BRAKE, 8.0, 10.0, route)
        assert accel == pytest.approx(-executor.limits.max_deceleration)

    def test_emergency_brake_at_rest_is_zero(self, executor, route):
        assert executor.acceleration_for(Maneuver.EMERGENCY_BRAKE, 0.0, 10.0, route) == 0.0

    def test_obstacle_stop_overrides_line(self, executor, route):
        # Obstacle stop point far before the entry line dominates.
        s = route.entry_s - 30.0
        free = executor.acceleration_for(Maneuver.WAIT, 8.0, s, route)
        blocked = executor.acceleration_for(Maneuver.WAIT, 8.0, s, route, stop_s=s + 8.0)
        assert blocked < free  # stronger braking for the nearer stop

    def test_obstacle_stop_behind_is_ignored(self, executor, route):
        s = route.entry_s - 10.0
        ahead = executor.acceleration_for(Maneuver.WAIT, 6.0, s, route)
        behind = executor.acceleration_for(Maneuver.WAIT, 6.0, s, route, stop_s=s - 5.0)
        assert behind == pytest.approx(ahead)


class TestYield:
    def test_yield_creeps_at_low_speed(self, executor, route):
        accel = executor.acceleration_for(Maneuver.YIELD, 1.0, route.entry_s - 40.0, route)
        assert accel > 0.0  # creep up toward yield speed

    def test_yield_brakes_near_line(self, executor, route):
        accel = executor.acceleration_for(Maneuver.YIELD, 6.0, route.entry_s - 3.0, route)
        assert accel < 0.0


class TestManeuverEnum:
    def test_stopping_classification(self):
        assert Maneuver.WAIT.is_stopping
        assert Maneuver.EMERGENCY_BRAKE.is_stopping
        assert not Maneuver.PROCEED.is_stopping
        assert not Maneuver.YIELD.is_stopping

    def test_custom_limits(self, route):
        limits = LongitudinalLimits(cruise_speed=5.0)
        executor = ManeuverExecutor(limits)
        accel = executor.acceleration_for(Maneuver.PROCEED, 5.0, 10.0, route)
        assert accel == pytest.approx(0.0, abs=0.1)


class TestClosedLoopStopping:
    def test_wait_stops_before_the_line(self, executor, route):
        """Integrating WAIT from approach speed must halt before the entry."""
        from repro.sim import Vehicle

        v = Vehicle(route=route, s=route.entry_s - 30.0, speed=8.0)
        for _ in range(200):
            accel = executor.acceleration_for(Maneuver.WAIT, v.speed, v.s, route)
            v.apply_acceleration(accel)
            v.step(0.1)
            if v.speed == 0.0:
                break
        assert v.speed == 0.0
        assert v.s <= route.entry_s + 0.1

"""Tests for pedestrian entities and collision detection helpers."""

import pytest

from repro.geom import Vec2
from repro.sim import (
    Approach,
    CollisionEvent,
    Crosswalk,
    Movement,
    Pedestrian,
    Vehicle,
    detect_ego_collisions,
    first_collision,
)


@pytest.fixture
def crosswalk():
    return Crosswalk(Vec2(-6, -9), Vec2(6, -9))


class TestPedestrian:
    def test_waits_for_start_time(self, crosswalk):
        ped = Pedestrian(crosswalk=crosswalk, start_time=2.0)
        ped.step(0.1, now=1.0)
        assert ped.s == 0.0
        assert ped.velocity_at(1.0) == Vec2.zero()

    def test_walks_at_speed(self, crosswalk):
        ped = Pedestrian(crosswalk=crosswalk, start_time=0.0, speed=1.4)
        for i in range(10):
            ped.step(0.1, now=i * 0.1)
        assert ped.s == pytest.approx(1.4)
        assert ped.velocity_at(1.0).norm() == pytest.approx(1.4)

    def test_stops_at_far_kerb(self, crosswalk):
        ped = Pedestrian(crosswalk=crosswalk, start_time=0.0, speed=2.0)
        for i in range(200):
            ped.step(0.1, now=i * 0.1)
        assert ped.finished
        assert ped.s == crosswalk.length
        assert ped.velocity_at(100.0) == Vec2.zero()

    def test_footprint_is_circle(self, crosswalk):
        ped = Pedestrian(crosswalk=crosswalk)
        assert ped.footprint().radius == pytest.approx(0.35)

    def test_invalid_dt(self, crosswalk):
        with pytest.raises(ValueError):
            Pedestrian(crosswalk=crosswalk).step(0.0, now=0.0)


class TestCollisionDetection:
    def test_no_collision_when_apart(self, intersection_map):
        route = intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)
        ego = Vehicle(route=route, s=20.0, is_ego=True)
        other = Vehicle(route=route, s=40.0)
        assert detect_ego_collisions(ego, [ego, other], [], 0.0) == []

    def test_vehicle_overlap_detected(self, intersection_map):
        route = intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)
        ego = Vehicle(route=route, s=20.0, is_ego=True, speed=3.0)
        other = Vehicle(route=route, s=22.0)
        events = detect_ego_collisions(ego, [ego, other], [], 1.5)
        assert len(events) == 1
        assert events[0].other_kind == "vehicle"
        assert events[0].ego_speed == pytest.approx(3.0)

    def test_pedestrian_contact_detected(self, intersection_map, crosswalk):
        route = intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)
        ego = Vehicle(route=route, s=58.0, is_ego=True)  # near y=-9
        # Walk the pedestrian to the ego lane.
        ped = Pedestrian(crosswalk=crosswalk, s=crosswalk.length / 2 + 1.75, start_time=0.0)
        events = detect_ego_collisions(ego, [ego], [ped], 2.0)
        assert len(events) == 1
        assert events[0].other_kind == "pedestrian"

    def test_finished_entities_ignored(self, intersection_map):
        route = intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)
        ego = Vehicle(route=route, s=20.0, is_ego=True)
        other = Vehicle(route=route, s=20.0)
        other.s = route.length  # finished
        assert detect_ego_collisions(ego, [ego, other], [], 0.0) == []

    def test_first_collision_ordering(self):
        a = CollisionEvent(time=2.0, ego_id=1, other_id=2, other_kind="vehicle", ego_speed=1.0)
        b = CollisionEvent(time=1.0, ego_id=1, other_id=3, other_kind="vehicle", ego_speed=1.0)
        assert first_collision([a, b]) is b
        assert first_collision([]) is None

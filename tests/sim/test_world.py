"""Tests for the World container: stepping, termination, ground truth."""

import pytest

from repro.sim import (
    Maneuver,
    ManeuverExecutor,
    ScenarioType,
    World,
    build_scenario,
)


def drive(world: World, maneuver: Maneuver = Maneuver.PROCEED, max_steps: int = 800) -> None:
    executor = ManeuverExecutor()
    for _ in range(max_steps):
        if world.done:
            return
        accel = executor.acceleration_for(maneuver, world.ego.speed, world.ego.s, world.ego.route)
        world.ego.apply_acceleration(accel)
        world.step()


class TestStepping:
    def test_time_advances_by_tick(self):
        world = World(build_scenario(ScenarioType.NOMINAL, 0))
        world.ego.apply_acceleration(0.0)
        world.step()
        assert world.time == pytest.approx(0.1)
        assert world.tick_count == 1

    def test_background_traffic_spawns(self):
        world = World(build_scenario(ScenarioType.CONGESTED, 0))
        drive(world)
        assert len(world.background_vehicles) >= 4

    def test_nominal_run_clears_without_collision(self):
        world = World(build_scenario(ScenarioType.NOMINAL, 1))
        drive(world)
        assert world.ego_clearance_time is not None
        assert not world.had_collision

    def test_pedestrian_scenario_has_pedestrian(self):
        world = World(build_scenario(ScenarioType.PEDESTRIAN, 0))
        assert len(world.pedestrians) == 1

    def test_min_true_gap_tracked(self):
        world = World(build_scenario(ScenarioType.CONGESTED, 0))
        drive(world)
        assert world.min_true_gap < 100.0


class TestTermination:
    def test_timeout(self):
        spec = build_scenario(ScenarioType.NOMINAL, 0)
        spec.timeout_s = 1.0
        world = World(spec)
        drive(world, Maneuver.WAIT)
        assert world.timed_out
        assert world.done

    def test_gridlock_requires_no_clearance_and_no_collision(self):
        spec = build_scenario(ScenarioType.NOMINAL, 0)
        spec.timeout_s = 2.0
        world = World(spec)
        drive(world, Maneuver.WAIT)
        assert world.gridlocked

    def test_done_shortly_after_clearance(self):
        world = World(build_scenario(ScenarioType.NOMINAL, 2))
        drive(world)
        assert world.done
        assert world.time <= world.ego_clearance_time + 2.1


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a = World(build_scenario(ScenarioType.CONGESTED, 5))
        b = World(build_scenario(ScenarioType.CONGESTED, 5))
        drive(a)
        drive(b)
        assert a.time == b.time
        assert a.ego.s == pytest.approx(b.ego.s)
        assert len(a.collisions) == len(b.collisions)
        assert [v.s for v in a.background_vehicles] == pytest.approx(
            [v.s for v in b.background_vehicles]
        )

    def test_different_seeds_differ(self):
        a = World(build_scenario(ScenarioType.CONGESTED, 1))
        b = World(build_scenario(ScenarioType.CONGESTED, 2))
        drive(a)
        drive(b)
        positions_a = sorted(round(v.s, 2) for v in a.background_vehicles)
        positions_b = sorted(round(v.s, 2) for v in b.background_vehicles)
        assert positions_a != positions_b


class TestCollisionBookkeeping:
    def test_collision_logged_once_per_partner(self):
        # Force an overlap by teleporting a background vehicle onto the ego.
        world = World(build_scenario(ScenarioType.CONGESTED, 0))
        world.ego.apply_acceleration(0.0)
        for _ in range(30):
            world.step()
        intruder = world.background_vehicles[0]
        intruder.route = world.ego.route
        intruder.s = world.ego.s + 1.0
        world.step()
        world.step()
        ids = [c.other_id for c in world.collisions]
        assert ids.count(intruder.vehicle_id) == 1
        assert world.had_collision

    def _world_with_contact(self):
        """(world, intruder) immediately after their first logged contact."""
        world = World(build_scenario(ScenarioType.CONGESTED, 0))
        world.ego.apply_acceleration(0.0)
        for _ in range(30):
            world.step()
        intruder = world.background_vehicles[0]
        intruder.route = world.ego.route
        intruder.s = world.ego.s + 1.0
        intruder.speed = world.ego.speed
        world.step()
        assert self._events_for(world, intruder) == 1
        return world, intruder

    @staticmethod
    def _events_for(world, intruder):
        return [c.other_id for c in world.collisions].count(intruder.vehicle_id)

    def test_recontact_after_separation_logged_again(self):
        world, intruder = self._world_with_contact()
        # Separate well beyond CONTACT_REARM_GAP: suppression must drop...
        intruder.s = world.ego.s + 30.0
        intruder.speed = world.ego.speed
        world.step()
        # ...so a fresh impact with the same partner is a new collision.
        intruder.s = world.ego.s + 1.0
        intruder.speed = world.ego.speed
        world.step()
        assert self._events_for(world, intruder) == 2

    def test_contact_stays_suppressed_within_rearm_gap(self):
        world, intruder = self._world_with_contact()
        # Hover just clear of the ego (footprint gap below CONTACT_REARM_GAP):
        # the pair has not genuinely separated, so no re-arm happens.
        half_lengths = (world.ego.length + intruder.length) / 2.0
        intruder.s = world.ego.s + half_lengths + 0.3
        intruder.speed = world.ego.speed
        world.step()
        # Re-overlapping now is the same grinding contact, not a new event.
        intruder.s = world.ego.s + 1.0
        intruder.speed = world.ego.speed
        world.step()
        assert self._events_for(world, intruder) == 1

    def test_departed_partner_rearms_via_liveness(self):
        world, intruder = self._world_with_contact()
        # Drive the intruder off the end of its route: a finished entity has
        # no footprint, which also drops the suppression.
        intruder.s = intruder.route.length + 1.0
        world.step()
        intruder.s = world.ego.s + 1.0
        intruder.speed = world.ego.speed
        world.step()
        assert self._events_for(world, intruder) == 2

"""Tests for the Table I sensor suite."""

import pytest

from repro.sim import (
    ScenarioType,
    World,
    build_scenario,
    build_sensor_suite,
    perceive,
)


@pytest.fixture
def world_and_snapshot():
    world = World(build_scenario(ScenarioType.CONGESTED, 0))
    for _ in range(40):
        world.ego.apply_acceleration(0.0)
        world.step()
    return world, perceive(world)


@pytest.fixture
def suite(world_and_snapshot):
    world, snapshot = world_and_snapshot
    return build_sensor_suite(snapshot, world.ego.route, world.ego.s, 0.5)


class TestTableI:
    def test_all_eight_channels_present(self, suite):
        channels = suite.channels()
        assert list(channels) == [
            "LiDAR-based Obstacle Summary",
            "Radar Summary",
            "Front RGB Camera",
            "Third-Person View Camera",
            "IMU Summary",
            "Vehicle Speed",
            "HD Map & Waypoint Data",
            "Traffic Controls Status",
        ]
        assert all(isinstance(text, str) and text for text in channels.values())

    def test_lidar_lists_objects_with_distance_and_size(self, suite):
        assert "m" in suite.lidar_summary
        assert "vehicle #" in suite.lidar_summary

    def test_radar_reports_radial_velocity(self, suite):
        assert "radial" in suite.radar_summary

    def test_imu_contains_acceleration(self, suite):
        assert "+0.50" in suite.imu_summary or "0.50 m/s^2" in suite.imu_summary

    def test_speed_channel(self, world_and_snapshot, suite):
        world, _ = world_and_snapshot
        assert f"{world.ego.speed:.1f}" in suite.vehicle_speed

    def test_waypoints_report_position_relative_to_entry(self, suite):
        assert "before the intersection entry" in suite.waypoints

    def test_traffic_controls_unsignalized(self, suite):
        assert "unsignalized" in suite.traffic_controls


class TestChannelSemantics:
    def test_empty_scene_lidar(self):
        world = World(build_scenario(ScenarioType.NOMINAL, 0))
        # t=0: background not yet threatening/perceived far away is fine;
        # build a snapshot with objects stripped.
        snapshot = perceive(world)
        snapshot.objects = []
        suite = build_sensor_suite(snapshot, world.ego.route, world.ego.s, 0.0)
        assert "no obstacles" in suite.lidar_summary
        assert "no detections" in suite.radar_summary

    def test_third_person_never_shows_ghosts(self, world_and_snapshot):
        # The contextual camera sees reality; ghosts only live in the
        # LiDAR/radar object list (SS V.B contrast).
        from repro.geom import Vec2
        from repro.sim import ObjectKind, PerceivedObject

        world, snapshot = world_and_snapshot
        ghost = PerceivedObject(
            object_id=-1,
            kind=ObjectKind.VEHICLE,
            position=snapshot.ego_position + Vec2(0, 10),
            velocity=Vec2(0, 0),
            heading=0.0,
            length=4.5,
            width=2.0,
            source_id=None,
        )
        without = build_sensor_suite(snapshot, world.ego.route, world.ego.s, 0.0)
        snapshot.objects.append(ghost)
        with_ghost = build_sensor_suite(snapshot, world.ego.route, world.ego.s, 0.0)
        assert with_ghost.third_person_camera == without.third_person_camera
        assert with_ghost.lidar_summary != without.lidar_summary

    def test_front_camera_limited_to_forward_cone(self, world_and_snapshot):
        from repro.geom import Vec2
        from repro.sim import ObjectKind, PerceivedObject

        world, snapshot = world_and_snapshot
        behind = PerceivedObject(
            object_id=99,
            kind=ObjectKind.VEHICLE,
            position=snapshot.ego_position - Vec2(0, 10),  # ego heads north
            velocity=Vec2(0, 0),
            heading=0.0,
            length=4.5,
            width=2.0,
            source_id=99,
        )
        snapshot.objects = [behind]
        suite = build_sensor_suite(snapshot, world.ego.route, world.ego.s, 0.0)
        assert "#99" not in suite.front_camera

    def test_waypoints_inside_box_note(self, world_and_snapshot):
        world, snapshot = world_and_snapshot
        route = world.ego.route
        mid_box_s = (route.entry_s + route.exit_s) / 2
        suite = build_sensor_suite(snapshot, route, mid_box_s, 0.0)
        assert "inside the intersection" in suite.waypoints

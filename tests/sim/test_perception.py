"""Tests for perceived-object extraction."""

import pytest

from repro.geom import Vec2
from repro.sim import (
    ObjectKind,
    PerceivedObject,
    PerceptionSnapshot,
    ScenarioType,
    World,
    build_scenario,
    perceive,
)


def _world_with_traffic(steps: int = 40) -> World:
    world = World(build_scenario(ScenarioType.CONGESTED, 0))
    for _ in range(steps):
        world.ego.apply_acceleration(0.0)
        world.step()
    return world


class TestPerceive:
    def test_ego_excluded(self):
        world = _world_with_traffic()
        snapshot = perceive(world)
        assert all(obj.source_id != world.ego.vehicle_id for obj in snapshot.objects)

    def test_objects_match_ground_truth(self):
        world = _world_with_traffic()
        snapshot = perceive(world)
        truth = {v.vehicle_id: v for v in world.background_vehicles}
        for obj in snapshot.objects:
            vehicle = truth[obj.source_id]
            assert obj.position.distance_to(vehicle.position) < 1e-9
            assert obj.speed == pytest.approx(vehicle.speed)

    def test_range_limit(self):
        world = _world_with_traffic()
        snapshot = perceive(world, perception_range=5.0)
        for obj in snapshot.objects:
            assert obj.position.distance_to(snapshot.ego_position) <= 5.0

    def test_pedestrian_perceived(self):
        world = World(build_scenario(ScenarioType.PEDESTRIAN, 0))
        for _ in range(30):
            world.ego.apply_acceleration(0.0)
            world.step()
        snapshot = perceive(world)
        kinds = {obj.kind for obj in snapshot.objects}
        assert ObjectKind.PEDESTRIAN in kinds

    def test_ego_odometry(self):
        world = _world_with_traffic()
        snapshot = perceive(world)
        assert snapshot.ego_speed == pytest.approx(world.ego.speed)
        assert snapshot.ego_position == world.ego.position


class TestPerceivedObject:
    def _obj(self, **overrides):
        defaults = dict(
            object_id=1,
            kind=ObjectKind.VEHICLE,
            position=Vec2(1, 2),
            velocity=Vec2(3, 0),
            heading=0.0,
            length=4.5,
            width=2.0,
            source_id=1,
        )
        defaults.update(overrides)
        return PerceivedObject(**defaults)

    def test_ghost_detection(self):
        assert self._obj(source_id=None).is_ghost
        assert not self._obj().is_ghost

    def test_with_velocity_copy(self):
        obj = self._obj()
        spoofed = obj.with_velocity(Vec2(9, 9))
        assert spoofed.velocity == Vec2(9, 9)
        assert obj.velocity == Vec2(3, 0)  # original untouched

    def test_with_position_copy(self):
        obj = self._obj()
        moved = obj.with_position(Vec2(0, 0))
        assert moved.position == Vec2(0, 0)
        assert obj.position == Vec2(1, 2)

    def test_vehicle_footprint_is_box(self):
        from repro.geom import OBB

        assert isinstance(self._obj().footprint(), OBB)

    def test_pedestrian_footprint_is_circle(self):
        from repro.geom import Circle

        ped = self._obj(kind=ObjectKind.PEDESTRIAN, length=0.7, width=0.7)
        footprint = ped.footprint()
        assert isinstance(footprint, Circle)
        assert footprint.radius == pytest.approx(0.35)


class TestSnapshot:
    def test_nearby_filters_radius(self):
        snapshot = PerceptionSnapshot(
            time=0.0,
            ego_position=Vec2(0, 0),
            ego_velocity=Vec2(0, 0),
            ego_heading=0.0,
            ego_speed=0.0,
            objects=[
                PerceivedObject(1, ObjectKind.VEHICLE, Vec2(3, 0), Vec2(0, 0), 0, 4.5, 2, 1),
                PerceivedObject(2, ObjectKind.VEHICLE, Vec2(30, 0), Vec2(0, 0), 0, 4.5, 2, 2),
            ],
        )
        assert [o.object_id for o in snapshot.nearby(10.0)] == [1]

    def test_copy_isolates_object_list(self):
        snapshot = PerceptionSnapshot(
            time=0.0,
            ego_position=Vec2(0, 0),
            ego_velocity=Vec2(0, 0),
            ego_heading=0.0,
            ego_speed=0.0,
        )
        clone = snapshot.copy()
        clone.objects.append(
            PerceivedObject(1, ObjectKind.VEHICLE, Vec2(1, 1), Vec2(0, 0), 0, 4.5, 2, 1)
        )
        assert snapshot.objects == []

"""Scalar-vs-batch equivalence: BatchWorlds must reproduce World bit-for-bit.

The scalar :class:`repro.sim.world.World` is the reference implementation;
the vectorized :class:`repro.sim.batch.BatchWorlds` is an optimization and
must never change results.  These tests drive both paths with identical ego
acceleration sequences and compare *exact* float equality — no tolerance —
on every observable: per-vehicle ``(s, speed, acceleration)``, pedestrian
progress, collision events, ``min_true_gap``, clearance time, done and
gridlock flags.

The fast subset (default) covers every scenario type at one seed with a
per-tick comparison, plus one mixed-policy multi-world batch.  The full
sweep (seeds x policies, 54 worlds) runs under ``-m slow``.
"""

import math
import random

import pytest

np = pytest.importorskip("numpy")

from repro.sim.batch import BatchWorlds
from repro.sim.scenario import SCENARIO_BUILDERS, ScenarioType, build_scenario
from repro.sim.world import World

MAX_TICKS = 700


def _policy(kind, name, seed, n=MAX_TICKS):
    """Deterministic ego acceleration schedule, same floats to both paths."""
    if kind == "random":
        rng = random.Random(f"policy:{name}:{seed}")
        return [rng.uniform(-3.0, 2.0) for _ in range(n)]
    if kind == "aggressive":
        return [2.0] * n
    if kind == "stopgo":
        # Hard brake to rest mid-approach, then floor it: exercises the
        # come-to-rest clamp and late-arrival contacts.
        return [-4.0] * 40 + [2.0] * (n - 40)
    raise ValueError(kind)


def _vehicle_states(world):
    return {
        v.vehicle_id: (v.s, v.speed, v.acceleration) for v in world.vehicles
    }


def _batch_states(batch, i):
    return {vid: (s, v, a) for vid, s, v, a in batch.vehicle_states(i)}


def _collision_tuples(events):
    return [(e.time, e.other_id, e.other_kind, e.ego_speed) for e in events]


def _assert_world_matches(world, batch, i, context):
    assert _batch_states(batch, i) == _vehicle_states(world), context
    if world.pedestrians:
        assert batch.pedestrian_progress(i) == world.pedestrians[0].s, context
    wm, bm = world.min_true_gap, float(batch.min_true_gap[i])
    assert wm == bm or (math.isinf(wm) and math.isinf(bm)), (
        f"{context}: min_true_gap {bm!r} != {wm!r}"
    )
    assert _collision_tuples(batch.collisions[i]) == _collision_tuples(
        world.collisions
    ), context
    assert batch.ego_clearance_time[i] == world.ego_clearance_time, context
    assert batch.world_done(i) == world.done, context


class TestPerTickEquivalence:
    """Lockstep single-world runs compared after every tick."""

    @pytest.mark.parametrize("scenario_type", list(SCENARIO_BUILDERS))
    def test_scenario_matches_scalar_per_tick(self, scenario_type):
        seed = 0
        spec = SCENARIO_BUILDERS[scenario_type](seed)
        accels = _policy("random", scenario_type.value, seed)

        world = World(spec)
        batch = BatchWorlds([spec])
        tick = 0
        while not world.done and tick < MAX_TICKS:
            a = accels[tick]
            world.ego.apply_acceleration(a)
            batch.apply_ego_accelerations([a])
            world.step()
            batch.step()
            tick += 1
            _assert_world_matches(
                world, batch, 0, f"{scenario_type.value} seed={seed} tick={tick}"
            )
        assert world.done, f"{scenario_type.value} never terminated"
        assert batch.gridlocked(0) == world.gridlocked
        assert batch.timed_out(0) == world.timed_out
        assert batch.had_collision(0) == world.had_collision


class TestMultiWorldBatch:
    """Many worlds stepped by ONE BatchWorlds must not cross-talk."""

    def test_mixed_policy_batch_matches_individual_worlds(self):
        specs, policies, labels = [], [], []
        for scenario_type, builder in SCENARIO_BUILDERS.items():
            for kind in ("aggressive", "stopgo"):
                specs.append(builder(0))
                policies.append(_policy(kind, scenario_type.value, 0))
                labels.append(f"{scenario_type.value}/{kind}")

        batch = BatchWorlds(specs)
        worlds = [World(s) for s in specs]
        for tick in range(MAX_TICKS):
            accels = []
            for i, world in enumerate(worlds):
                accels.append(policies[i][tick])
                if not world.done:
                    world.ego.apply_acceleration(accels[-1])
                    world.step()
            batch.apply_ego_accelerations(accels)
            batch.step()
            if batch.all_done and all(w.done for w in worlds):
                break

        total_collisions = 0
        for i, world in enumerate(worlds):
            _assert_world_matches(world, batch, i, labels[i])
            assert batch.gridlocked(i) == world.gridlocked, labels[i]
            total_collisions += len(world.collisions)
        # The aggressive policy rams background traffic — the sweep is only
        # meaningful if the collision/dedup path actually fired.
        assert total_collisions > 0

    def test_done_worlds_freeze_while_others_run(self):
        # One world times out quickly (short timeout), the other keeps going;
        # the finished world's state must not drift afterwards.
        import dataclasses

        fast = dataclasses.replace(build_scenario(ScenarioType.NOMINAL, 0), timeout_s=1.0)
        slow = build_scenario(ScenarioType.NOMINAL, 0)
        batch = BatchWorlds([fast, slow])
        for _ in range(12):
            batch.apply_ego_accelerations([0.0, 0.0])
            batch.step()
        assert batch.timed_out(0)
        frozen = _batch_states(batch, 0)
        for _ in range(10):
            batch.apply_ego_accelerations([2.0, 2.0])
            batch.step()
        assert _batch_states(batch, 0) == frozen
        assert not batch.world_done(1) or batch.ego_finished(1)


class TestValidation:
    def test_acceleration_count_must_match_batch(self):
        batch = BatchWorlds([build_scenario(ScenarioType.NOMINAL, 0)])
        with pytest.raises(ValueError):
            batch.apply_ego_accelerations([0.0, 1.0])

    def test_profiler_records_batch_step_phase(self):
        from repro.obs import PhaseProfiler
        from repro.sim.batch import BATCH_STEP_PHASE

        profiler = PhaseProfiler()
        batch = BatchWorlds([build_scenario(ScenarioType.NOMINAL, 0)])
        batch.apply_ego_accelerations([0.0])
        batch.step(profiler=profiler)
        assert BATCH_STEP_PHASE == "sim.batch_step"
        assert profiler.snapshot()[BATCH_STEP_PHASE]["count"] == 1


@pytest.mark.slow
class TestFullSweep:
    """54 worlds (6 scenario types x 3 seeds x 3 policies) in one batch."""

    def test_full_sweep_matches_scalar(self):
        specs, policies, labels = [], [], []
        for scenario_type, builder in SCENARIO_BUILDERS.items():
            for seed in (0, 1, 2):
                for kind in ("random", "aggressive", "stopgo"):
                    specs.append(builder(seed))
                    policies.append(_policy(kind, scenario_type.value, seed))
                    labels.append(f"{scenario_type.value}/{seed}/{kind}")

        batch = BatchWorlds(specs)
        worlds = [World(s) for s in specs]
        for tick in range(MAX_TICKS):
            accels = []
            for i, world in enumerate(worlds):
                accels.append(policies[i][tick])
                if not world.done:
                    world.ego.apply_acceleration(accels[-1])
                    world.step()
            batch.apply_ego_accelerations(accels)
            batch.step()
            if batch.all_done and all(w.done for w in worlds):
                break

        for i, world in enumerate(worlds):
            _assert_world_matches(world, batch, i, labels[i])
            assert batch.gridlocked(i) == world.gridlocked, labels[i]
            assert batch.timed_out(i) == world.timed_out, labels[i]

"""Tests for vehicle kinematics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Approach, Movement, Vehicle, gap_along_route


@pytest.fixture
def straight(intersection_map):
    return intersection_map.route(Approach.SOUTH, Movement.STRAIGHT)


class TestKinematics:
    def test_constant_speed_advance(self, straight):
        v = Vehicle(route=straight, s=10.0, speed=5.0)
        v.apply_acceleration(0.0)
        v.step(0.1)
        assert v.s == pytest.approx(10.5)
        assert v.speed == pytest.approx(5.0)

    def test_acceleration_trapezoidal(self, straight):
        v = Vehicle(route=straight, s=0.0, speed=0.0)
        v.apply_acceleration(2.0)
        v.step(1.0)
        assert v.speed == pytest.approx(2.0)
        assert v.s == pytest.approx(1.0)  # average speed 1.0 over the step

    def test_braking_never_reverses(self, straight):
        v = Vehicle(route=straight, s=10.0, speed=1.0)
        v.apply_acceleration(-8.0)
        before = v.s
        v.step(1.0)
        assert v.speed == 0.0
        assert before < v.s < before + 1.0  # partial advance then rest

    def test_stopped_vehicle_stays_put_under_braking(self, straight):
        v = Vehicle(route=straight, s=10.0, speed=0.0)
        v.apply_acceleration(-5.0)
        v.step(0.1)
        assert v.s == 10.0
        assert v.speed == 0.0

    def test_negative_dt_rejected(self, straight):
        v = Vehicle(route=straight)
        with pytest.raises(ValueError):
            v.step(0.0)

    def test_negative_initial_speed_rejected(self, straight):
        with pytest.raises(ValueError):
            Vehicle(route=straight, speed=-1.0)

    def test_jerk_from_accel_change(self, straight):
        v = Vehicle(route=straight, speed=5.0)
        v.apply_acceleration(1.0)
        v.apply_acceleration(-2.0)
        assert v.jerk(0.1) == pytest.approx(-30.0)


class TestFinishTransition:
    def test_come_to_rest_across_route_end_finishes(self, straight):
        # Stopping distance 0.3^2 / (2*4) = 0.011 m crosses the remaining
        # 0.005 m: coming to rest mid-step still drives off the route end.
        v = Vehicle(route=straight, s=straight.length - 0.005, speed=0.3)
        v.apply_acceleration(-4.0)
        assert not v.finished
        v.step(0.1)
        assert v.speed == 0.0
        assert v.s >= straight.length
        assert v.finished

    def test_come_to_rest_short_of_end_stays_unfinished(self, straight):
        v = Vehicle(route=straight, s=straight.length - 1.0, speed=0.3)
        v.apply_acceleration(-4.0)
        v.step(0.1)
        assert v.speed == 0.0
        assert not v.finished

    def test_cruising_across_route_end_finishes(self, straight):
        v = Vehicle(route=straight, s=straight.length - 0.1, speed=5.0)
        v.apply_acceleration(0.0)
        v.step(0.1)
        assert v.finished


class TestDerivedGeometry:
    def test_position_follows_route(self, straight):
        v = Vehicle(route=straight, s=20.0)
        assert v.position == straight.point_at(20.0)

    def test_velocity_aligned_with_heading(self, straight):
        v = Vehicle(route=straight, s=20.0, speed=4.0)
        assert v.velocity.norm() == pytest.approx(4.0)
        assert v.velocity.y == pytest.approx(4.0, abs=1e-6)

    def test_footprint_dimensions(self, straight):
        box = Vehicle(route=straight, s=20.0).footprint()
        assert box.half_length == pytest.approx(2.25)
        assert box.half_width == pytest.approx(1.0)

    def test_unique_ids(self, straight):
        a, b = Vehicle(route=straight), Vehicle(route=straight)
        assert a.vehicle_id != b.vehicle_id


class TestProgress:
    def test_intersection_membership(self, straight):
        v = Vehicle(route=straight, s=straight.entry_s + 3.0)
        assert v.in_intersection
        v2 = Vehicle(route=straight, s=straight.entry_s - 5.0)
        assert not v2.in_intersection

    def test_cleared_requires_body_out(self, straight):
        v = Vehicle(route=straight, s=straight.exit_s + 0.5)
        assert not v.cleared_intersection
        v.s = straight.exit_s + 3.0
        assert v.cleared_intersection

    def test_finished_at_route_end(self, straight):
        v = Vehicle(route=straight, s=straight.length)
        assert v.finished

    def test_distance_to_entry_sign(self, straight):
        assert Vehicle(route=straight, s=10.0).distance_to_entry() > 0
        assert Vehicle(route=straight, s=straight.entry_s + 1).distance_to_entry() < 0


class TestGapAlongRoute:
    def test_gap_between_leader_and_follower(self, straight):
        leader = Vehicle(route=straight, s=30.0)
        follower = Vehicle(route=straight, s=20.0)
        assert gap_along_route(leader, follower) == pytest.approx(10.0 - 4.5)

    def test_wrong_order_returns_none(self, straight):
        leader = Vehicle(route=straight, s=10.0)
        follower = Vehicle(route=straight, s=20.0)
        assert gap_along_route(leader, follower) is None

    def test_different_routes_return_none(self, straight, intersection_map):
        other = intersection_map.route(Approach.EAST, Movement.STRAIGHT)
        assert gap_along_route(Vehicle(route=straight, s=30), Vehicle(route=other, s=20)) is None

    def test_overlapping_clamped_to_zero(self, straight):
        leader = Vehicle(route=straight, s=21.0)
        follower = Vehicle(route=straight, s=20.0)
        assert gap_along_route(leader, follower) == 0.0


# Hypothesis cannot mix injected fixtures with strategies filled from the
# right, so the property tests build their own map once at module scope.
from repro.sim import IntersectionMap

_MAP = IntersectionMap()


class TestEnergyProperties:
    @given(
        st.floats(min_value=0, max_value=15),
        st.floats(min_value=-8, max_value=3),
        st.integers(min_value=1, max_value=50),
    )
    def test_speed_never_negative(self, speed, accel, steps):
        route = _MAP.route(Approach.SOUTH, Movement.STRAIGHT)
        v = Vehicle(route=route, s=0.0, speed=speed)
        for _ in range(steps):
            v.apply_acceleration(accel)
            v.step(0.1)
            assert v.speed >= 0.0

    @given(
        st.floats(min_value=0, max_value=15),
        st.floats(min_value=-8, max_value=3),
        st.integers(min_value=1, max_value=50),
    )
    def test_position_monotone(self, speed, accel, steps):
        route = _MAP.route(Approach.SOUTH, Movement.STRAIGHT)
        v = Vehicle(route=route, s=0.0, speed=speed)
        previous = v.s
        for _ in range(steps):
            v.apply_acceleration(accel)
            v.step(0.1)
            assert v.s >= previous
            previous = v.s

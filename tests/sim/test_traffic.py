"""Tests for IDM car-following, right-of-way logic and spawning."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (
    Approach,
    IDMParameters,
    IntersectionMap,
    Movement,
    Pedestrian,
    SpawnEvent,
    TrafficController,
    TrafficSpawner,
    Vehicle,
    idm_acceleration,
)

_MAP = IntersectionMap()


class TestIDM:
    def test_free_road_accelerates_below_desired(self):
        params = IDMParameters()
        assert idm_acceleration(4.0, None, 0.0, params) > 0.0

    def test_free_road_steady_at_desired(self):
        params = IDMParameters(desired_speed=8.0)
        assert idm_acceleration(8.0, None, 0.0, params) == pytest.approx(0.0, abs=1e-9)

    def test_close_gap_brakes(self):
        params = IDMParameters()
        accel = idm_acceleration(8.0, 3.0, 0.0, params)
        assert accel < -1.0

    def test_closing_fast_brakes_harder(self):
        params = IDMParameters()
        steady = idm_acceleration(8.0, 15.0, 0.0, params)
        closing = idm_acceleration(8.0, 15.0, 5.0, params)
        assert closing < steady

    def test_braking_floor(self):
        params = IDMParameters()
        accel = idm_acceleration(10.0, 0.1, 10.0, params)
        assert accel >= -3.0 * params.comfortable_deceleration - 1e-9

    @given(
        st.floats(min_value=0, max_value=12),
        st.floats(min_value=0.5, max_value=60),
        st.floats(min_value=-10, max_value=10),
    )
    def test_acceleration_bounded(self, speed, gap, closing):
        params = IDMParameters()
        accel = idm_acceleration(speed, gap, closing, params)
        assert -3.0 * params.comfortable_deceleration - 1e-9 <= accel <= params.max_acceleration + 1e-9

    @given(st.floats(min_value=0.5, max_value=30), st.floats(min_value=0, max_value=10))
    def test_monotone_in_gap(self, gap, speed):
        params = IDMParameters()
        tighter = idm_acceleration(speed, gap, 0.0, params)
        looser = idm_acceleration(speed, gap + 5.0, 0.0, params)
        assert looser >= tighter - 1e-9


class TestCarFollowing:
    def test_follower_brakes_behind_stopped_leader(self):
        route = _MAP.route(Approach.EAST, Movement.STRAIGHT)
        leader = Vehicle(route=route, s=30.0, speed=0.0)
        follower = Vehicle(route=route, s=22.0, speed=6.0)
        controller = TrafficController(_MAP)
        # Run several ticks: the reaction buffer delays the response.
        for _ in range(5):
            controller.control([leader, follower], [], now=0.0)
        assert follower.acceleration < 0.0

    def test_platoon_never_rear_ends_under_normal_driving(self):
        route = _MAP.route(Approach.EAST, Movement.STRAIGHT)
        leader = Vehicle(route=route, s=20.0, speed=7.0)
        follower = Vehicle(route=route, s=8.0, speed=8.0)
        controller = TrafficController(_MAP)
        now = 0.0
        for _ in range(300):
            controller.control([leader, follower], [], now)
            for v in (leader, follower):
                v.step(0.1)
            now += 0.1
            gap = leader.s - follower.s - 4.5
            assert gap > 0.0

    def test_ego_acceleration_untouched(self):
        route = _MAP.route(Approach.EAST, Movement.STRAIGHT)
        ego = Vehicle(route=route, s=10.0, speed=5.0, is_ego=True)
        ego.apply_acceleration(1.23)
        ego.apply_acceleration(1.23)  # stabilize previous too
        controller = TrafficController(_MAP)
        controller.control([ego], [], now=0.0)
        assert ego.acceleration == 1.23


class TestRightOfWay:
    def _approaching(self, approach, movement, distance, speed):
        route = _MAP.route(approach, movement)
        return Vehicle(route=route, s=route.entry_s - distance, speed=speed)

    def test_yields_to_vehicle_inside_box(self):
        route = _MAP.route(Approach.EAST, Movement.STRAIGHT)
        inside = Vehicle(route=_MAP.route(Approach.SOUTH, Movement.STRAIGHT))
        inside.s = inside.route.entry_s + 3.0
        inside.speed = 5.0
        approaching = self._approaching(Approach.EAST, Movement.STRAIGHT, 8.0, 6.0)
        controller = TrafficController(_MAP)
        for _ in range(5):
            controller.control([inside, approaching], [], now=0.0)
        assert approaching.acceleration < 0.0

    def test_clear_arrival_order_wins(self):
        # The later vehicle yields to the much earlier one.
        early = self._approaching(Approach.EAST, Movement.STRAIGHT, 4.0, 7.0)
        late = self._approaching(Approach.SOUTH, Movement.STRAIGHT, 30.0, 7.0)
        controller = TrafficController(_MAP)
        for _ in range(5):
            controller.control([early, late], [], now=0.0)
        assert early.acceleration > -0.5  # keeps going
        assert late.acceleration < 0.0  # yields

    def test_left_turn_yields_to_straight_on_tie(self):
        left = self._approaching(Approach.NORTH, Movement.LEFT, 10.0, 7.0)
        straight = self._approaching(Approach.SOUTH, Movement.STRAIGHT, 10.0, 7.0)
        controller = TrafficController(_MAP)
        for _ in range(5):
            controller.control([left, straight], [], now=0.0)
        assert left.acceleration < 0.0

    def test_committed_vehicle_never_stops_in_box(self):
        route = _MAP.route(Approach.EAST, Movement.STRAIGHT)
        committed = Vehicle(route=route, s=route.entry_s + 1.0, speed=7.0)
        rival = self._approaching(Approach.SOUTH, Movement.STRAIGHT, 2.0, 7.0)
        controller = TrafficController(_MAP)
        for _ in range(5):
            controller.control([committed, rival], [], now=0.0)
        assert committed.acceleration > -1.0

    def test_yields_to_pedestrian_on_path(self):
        vehicle = self._approaching(Approach.SOUTH, Movement.STRAIGHT, 8.0, 6.0)
        crossing = _MAP.south_crosswalk
        pedestrian = Pedestrian(crosswalk=crossing, s=crossing.length / 2, start_time=0.0)
        controller = TrafficController(_MAP)
        for _ in range(5):
            controller.control([vehicle], [pedestrian], now=1.0)
        assert vehicle.acceleration < 0.0


class TestSpawner:
    def test_spawns_at_scheduled_time(self):
        spawner = TrafficSpawner(
            _MAP, [SpawnEvent(time=1.0, approach=Approach.EAST, movement=Movement.STRAIGHT)]
        )
        vehicles = []
        assert spawner.spawn_due(0.5, vehicles) == []
        spawned = spawner.spawn_due(1.0, vehicles)
        assert len(spawned) == 1
        assert spawner.exhausted

    def test_advance_gives_head_start(self):
        spawner = TrafficSpawner(
            _MAP,
            [SpawnEvent(time=0.0, approach=Approach.EAST, movement=Movement.STRAIGHT, advance=25.0)],
        )
        vehicles = []
        spawner.spawn_due(0.0, vehicles)
        assert vehicles[0].s == pytest.approx(25.0)

    def test_blocked_slot_defers_spawn(self):
        route = _MAP.route(Approach.EAST, Movement.STRAIGHT)
        blocker = Vehicle(route=route, s=2.0, speed=0.0)
        spawner = TrafficSpawner(
            _MAP, [SpawnEvent(time=0.0, approach=Approach.EAST, movement=Movement.STRAIGHT)]
        )
        vehicles = [blocker]
        assert spawner.spawn_due(0.0, vehicles) == []
        assert not spawner.exhausted
        blocker.s = 50.0
        assert len(spawner.spawn_due(0.1, vehicles)) == 1

    def test_tailgater_flag_propagates(self):
        spawner = TrafficSpawner(
            _MAP,
            [SpawnEvent(time=0.0, approach=Approach.SOUTH, movement=Movement.STRAIGHT, tailgater=True)],
        )
        vehicles = []
        spawner.spawn_due(0.0, vehicles)
        assert vehicles[0].tailgater

"""Tests for the planner's tactical feature extraction."""

import math

import pytest

from repro.geom import Vec2
from repro.llm import PlannerObservation, observe
from repro.sim import (
    Approach,
    IntersectionMap,
    Movement,
    ObjectKind,
    PerceivedObject,
    PerceptionSnapshot,
)

_MAP = IntersectionMap()
_ROUTE = _MAP.route(Approach.SOUTH, Movement.STRAIGHT)


def snapshot(ego_s=40.0, ego_speed=7.0, objects=()):
    position = _ROUTE.point_at(ego_s)
    heading = _ROUTE.heading_at(ego_s)
    return PerceptionSnapshot(
        time=0.0,
        ego_position=position,
        ego_velocity=Vec2.unit(heading) * ego_speed,
        ego_heading=heading,
        ego_speed=ego_speed,
        objects=list(objects),
    )


def vehicle(x, y, vx, vy, object_id=1):
    return PerceivedObject(
        object_id=object_id,
        kind=ObjectKind.VEHICLE,
        position=Vec2(x, y),
        velocity=Vec2(vx, vy),
        heading=Vec2(vx, vy).angle() if (vx, vy) != (0, 0) else 0.0,
        length=4.5,
        width=2.0,
        source_id=object_id,
    )


def pedestrian(x, y, vx=0.0, vy=0.0, object_id=1001):
    return PerceivedObject(
        object_id=object_id,
        kind=ObjectKind.PEDESTRIAN,
        position=Vec2(x, y),
        velocity=Vec2(vx, vy),
        heading=0.0,
        length=0.7,
        width=0.7,
        source_id=object_id,
    )


class TestBasicObservation:
    def test_empty_scene(self):
        obs = observe(snapshot(), _ROUTE, 40.0)
        assert obs.threats == []
        assert obs.object_count == 0
        assert math.isinf(obs.obstacle_ahead_distance)
        assert not obs.in_intersection

    def test_positional_flags(self):
        mid_box = (_ROUTE.entry_s + _ROUTE.exit_s) / 2
        obs = observe(snapshot(ego_s=mid_box), _ROUTE, mid_box)
        assert obs.in_intersection
        past = observe(snapshot(ego_s=_ROUTE.exit_s + 5), _ROUTE, _ROUTE.exit_s + 5)
        assert past.past_intersection

    def test_distance_to_entry(self):
        obs = observe(snapshot(ego_s=40.0), _ROUTE, 40.0)
        assert obs.distance_to_entry == pytest.approx(_ROUTE.entry_s - 40.0)


class TestVehicleThreats:
    def test_collision_course_is_severe(self):
        # Crossing vehicle timed to meet the ego at the conflict point.
        # Ego at s=40 (y=-27), 7 m/s: reaches y=-1.75 at ~3.6 s.
        # Vehicle from east on y=-1.75 heading west at 7 m/s placed to
        # arrive simultaneously: x = 1.75 + 7*3.6 = 27.
        threat_source = vehicle(27.0, -1.75, -7.0, 0.0)
        obs = observe(snapshot(ego_speed=7.0, objects=[threat_source]), _ROUTE, 40.0)
        assert len(obs.threats) == 1
        assert obs.threats[0].severity > 0.5

    def test_opposite_lane_pass_discounted(self):
        # Oncoming traffic in the adjacent lane: high closing speed but a
        # pure lateral offset at CPA.
        oncoming = vehicle(-1.75, 10.0, 0.0, -7.0)
        obs = observe(snapshot(objects=[oncoming]), _ROUTE, 40.0)
        assert obs.max_severity < 0.35

    def test_spoofed_aggressive_oncoming_not_discounted(self):
        # Same geometry but implausibly fast: the pass discount must drop.
        slow = observe(snapshot(objects=[vehicle(-1.75, 5.0, 0.0, -7.0)]), _ROUTE, 40.0)
        fast = observe(snapshot(objects=[vehicle(-1.75, 5.0, 0.0, -16.0)]), _ROUTE, 40.0)
        assert fast.max_severity > slow.max_severity

    def test_receding_vehicle_ignored(self):
        receding = vehicle(1.75, -50.0, 0.0, -7.0)  # behind ego, driving away
        obs = observe(snapshot(objects=[receding]), _ROUTE, 40.0)
        assert obs.max_severity < 0.35

    def test_box_occupancy_overlap_is_threat(self):
        # A vehicle that will occupy the box during the ego's window, even
        # though straight-line CPA threads past.
        crossing = vehicle(24.0, 1.75, -6.8, 0.0)
        obs = observe(snapshot(ego_speed=7.0, objects=[crossing]), _ROUTE, 40.0)
        assert obs.max_severity >= 0.3

    def test_stopped_vehicle_at_line_not_occupancy_threat(self):
        stopped = vehicle(10.0, 1.75, 0.0, 0.0)
        obs = observe(snapshot(objects=[stopped]), _ROUTE, 40.0)
        # May register via CPA if directly conflicting, but not strongly.
        assert obs.max_severity <= 0.7

    def test_threats_sorted_by_severity(self):
        near = vehicle(20.0, -1.75, -7.0, 0.0, object_id=1)
        far = vehicle(45.0, 1.75, -6.0, 0.0, object_id=2)
        obs = observe(snapshot(objects=[near, far]), _ROUTE, 40.0)
        severities = [t.severity for t in obs.threats]
        assert severities == sorted(severities, reverse=True)


class TestPedestrianThreats:
    def test_pedestrian_on_path_ahead(self):
        ego_s = 45.0
        ahead = _ROUTE.point_at(ego_s + 10.0)
        obs = observe(
            snapshot(ego_s=ego_s, objects=[pedestrian(ahead.x, ahead.y)]), _ROUTE, ego_s
        )
        assert obs.threats
        assert obs.threats[0].on_ego_path
        assert obs.threats[0].severity >= 0.5

    def test_pedestrian_far_from_path_ignored(self):
        obs = observe(snapshot(objects=[pedestrian(20.0, -40.0)]), _ROUTE, 40.0)
        assert obs.threats == []

    def test_walking_pedestrian_predicted_onto_path(self):
        # Pedestrian left of the lane walking right, will be on the path
        # when the ego arrives.
        ego_s = 45.0
        ahead = _ROUTE.point_at(ego_s + 12.0)
        walker = pedestrian(ahead.x - 4.0, ahead.y, vx=1.4)
        obs = observe(snapshot(ego_s=ego_s, ego_speed=6.0, objects=[walker]), _ROUTE, ego_s)
        assert obs.threats and obs.threats[0].on_ego_path


class TestBlockingObstacle:
    def test_static_blocker_distance(self):
        ego_s = 40.0
        blocker_point = _ROUTE.point_at(ego_s + 10.0)
        blocker = vehicle(blocker_point.x, blocker_point.y, 0.0, 0.0)
        obs = observe(snapshot(ego_s=ego_s, objects=[blocker]), _ROUTE, ego_s)
        # The corridor scan reports the first sample within the corridor
        # radius, so the estimate is conservative by up to the half-width.
        assert obs.obstacle_ahead_distance == pytest.approx(10.0, abs=2.6)

    def test_moving_vehicle_not_blocking(self):
        ego_s = 40.0
        point = _ROUTE.point_at(ego_s + 10.0)
        mover = vehicle(point.x, point.y, 0.0, 7.0)
        obs = observe(snapshot(ego_s=ego_s, objects=[mover]), _ROUTE, ego_s)
        assert math.isinf(obs.obstacle_ahead_distance)

    def test_off_lane_static_not_blocking(self):
        parked = vehicle(10.0, -30.0, 0.0, 0.0)
        obs = observe(snapshot(objects=[parked]), _ROUTE, 40.0)
        assert math.isinf(obs.obstacle_ahead_distance)


class TestApproachingCount:
    def test_counts_vehicles_heading_to_box(self):
        inbound = vehicle(25.0, 1.75, -7.0, 0.0)
        outbound = vehicle(25.0, -1.75, 7.0, 0.0)
        obs = observe(snapshot(objects=[inbound, outbound]), _ROUTE, 40.0)
        assert obs.approaching_near_count == 1

    def test_pedestrians_not_counted(self):
        obs = observe(snapshot(objects=[pedestrian(5.0, -10.0, vx=1.0)]), _ROUTE, 40.0)
        assert obs.approaching_near_count == 0


class TestObservationProperties:
    def test_pressing_threshold(self):
        obs = PlannerObservation(
            time=0.0, ego_speed=5.0, distance_to_entry=10.0,
            in_intersection=False, past_intersection=False,
        )
        assert obs.pressing_threats == []
        assert obs.max_severity == 0.0
        assert obs.max_closing_speed == 0.0

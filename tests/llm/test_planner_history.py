"""Regression tests for LLMPlanner history trimming edge cases.

The trim used ``del history[: -limit]``, a no-op slice at ``limit=0``
that let the history grow without bound.
"""

from __future__ import annotations

import pytest

from repro.llm.planner import LLMPlanner
from repro.sim.perception import perceive
from repro.sim.scenario import ScenarioType, build_scenario
from repro.sim.world import World


def drive(planner: LLMPlanner, ticks: int) -> None:
    world = World(build_scenario(ScenarioType.NOMINAL, 0))
    for _ in range(ticks):
        snapshot = perceive(world)
        planner.plan(snapshot, world.ego.route, world.ego.s)
        world.ego.apply_acceleration(0.5)
        world.step()


class TestHistoryTrim:
    def test_zero_limit_keeps_no_history(self):
        planner = LLMPlanner(seed=0, history_limit=0)
        drive(planner, 30)
        assert planner.history == []

    def test_limit_one_keeps_only_newest(self):
        planner = LLMPlanner(seed=0, history_limit=1)
        drive(planner, 30)
        assert len(planner.history) == 1

    @pytest.mark.parametrize("limit", [2, 8])
    def test_keeps_newest_entries_in_order(self, limit):
        planner = LLMPlanner(seed=0, history_limit=limit)
        drive(planner, 40)
        assert len(planner.history) <= limit
        times = [entry.time for entry in planner.history]
        assert times == sorted(times)
        # The retained entries are the newest ones, not the oldest.
        if len(planner.history) == limit:
            assert times[-1] > times[0]

    def test_under_limit_untrimmed(self):
        planner = LLMPlanner(seed=0, history_limit=100)
        drive(planner, 10)
        assert 0 < len(planner.history) <= 10

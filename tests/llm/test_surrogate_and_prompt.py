"""Tests for the surrogate LLM decision model, prompt templater and CoT."""

import pytest

from repro.llm import (
    FEW_SHOT_EXAMPLES,
    HistoryEntry,
    LLMPlanner,
    PlannerObservation,
    SurrogateConfig,
    SurrogateLLM,
    build_prompt,
    explain,
    render_history,
)
from repro.llm.features import Threat
from repro.sim import (
    Approach,
    IntersectionMap,
    Maneuver,
    Movement,
    ObjectKind,
    PerceivedObject,
    ScenarioType,
    World,
    build_scenario,
    build_sensor_suite,
    perceive,
)
from repro.geom import Vec2

_MAP = IntersectionMap()
_ROUTE = _MAP.route(Approach.SOUTH, Movement.STRAIGHT)


def obs(
    time=0.0,
    ego_speed=7.0,
    distance_to_entry=20.0,
    in_intersection=False,
    past_intersection=False,
    threats=(),
    obstacle_ahead=float("inf"),
    object_count=0,
    approaching=0,
):
    return PlannerObservation(
        time=time,
        ego_speed=ego_speed,
        distance_to_entry=distance_to_entry,
        in_intersection=in_intersection,
        past_intersection=past_intersection,
        threats=list(threats),
        obstacle_ahead_distance=obstacle_ahead,
        object_count=object_count,
        approaching_near_count=approaching,
    )


def threat(severity=0.8, closing=5.0, on_path=False):
    dummy = PerceivedObject(
        object_id=1,
        kind=ObjectKind.PEDESTRIAN if on_path else ObjectKind.VEHICLE,
        position=Vec2(10, 0),
        velocity=Vec2(-5, 0),
        heading=3.14,
        length=4.5,
        width=2.0,
        source_id=1,
    )
    return Threat(
        obj=dummy,
        distance=10.0,
        time_to_conflict=2.0,
        conflict_distance=1.0,
        inside_box=False,
        closing_speed=closing,
        on_ego_path=on_path,
        severity=severity,
    )


class TestDeterminism:
    def test_same_seed_same_decisions(self):
        a, b = SurrogateLLM(seed=3), SurrogateLLM(seed=3)
        sequence = [obs(time=i * 0.1, object_count=3, threats=[threat()]) for i in range(30)]
        decisions_a = [a.decide(o).maneuver for o in sequence]
        decisions_b = [b.decide(o).maneuver for o in sequence]
        assert decisions_a == decisions_b

    def test_reset_reproduces_run(self):
        model = SurrogateLLM(seed=5)
        sequence = [obs(time=i * 0.1, threats=[threat()]) for i in range(20)]
        first = [model.decide(o).maneuver for o in sequence]
        model.reset()
        second = [model.decide(o).maneuver for o in sequence]
        assert first == second


class TestBehaviours:
    def test_clear_road_proceeds(self):
        model = SurrogateLLM(seed=0)
        decision = model.decide(obs())
        assert decision.maneuver is Maneuver.PROCEED
        assert decision.failure_mode is None

    def test_past_intersection_always_proceeds(self):
        model = SurrogateLLM(seed=0)
        decision = model.decide(obs(past_intersection=True, threats=[threat()]))
        assert decision.maneuver is Maneuver.PROCEED

    def test_blocking_obstacle_triggers_braking(self):
        model = SurrogateLLM(seed=0)
        decision = model.decide(obs(obstacle_ahead=10.0))
        assert decision.failure_mode == "ghost_reaction"
        assert decision.maneuver in (Maneuver.EMERGENCY_BRAKE, Maneuver.WAIT)

    def test_ghost_reaction_sticky_within_episode(self):
        model = SurrogateLLM(seed=0)
        first = model.decide(obs(time=0.0, obstacle_ahead=10.0))
        second = model.decide(obs(time=0.1, obstacle_ahead=9.0))
        assert first.maneuver == second.maneuver

    def test_severe_threat_waits(self):
        config = SurrogateConfig(base_misjudge_rate=0.0, per_threat_misjudge=0.0)
        model = SurrogateLLM(config=config, seed=0)
        decision = model.decide(obs(threats=[threat(severity=0.9)]))
        assert decision.maneuver is Maneuver.WAIT

    def test_moderate_threat_yields(self):
        config = SurrogateConfig(base_misjudge_rate=0.0, per_threat_misjudge=0.0)
        model = SurrogateLLM(config=config, seed=0)
        decision = model.decide(obs(threats=[threat(severity=0.5)], distance_to_entry=20.0))
        assert decision.maneuver is Maneuver.YIELD

    def test_aggressive_closing_scares(self):
        config = SurrogateConfig(aggressive_closing_mps=10.0, spooked_rate=1.0)
        model = SurrogateLLM(config=config, seed=0)
        decision = model.decide(obs(threats=[threat(severity=0.6, closing=15.0)]))
        assert decision.failure_mode == "spoof_caution"
        assert model.spooked
        assert model.spoof_scares == 1

    def test_spooked_refuses_to_cross_with_traffic_near(self):
        config = SurrogateConfig(aggressive_closing_mps=10.0, spooked_rate=1.0)
        model = SurrogateLLM(config=config, seed=0)
        model.decide(obs(time=0.0, threats=[threat(severity=0.6, closing=15.0)]))
        decision = model.decide(obs(time=1.0, approaching=1))
        assert decision.maneuver is Maneuver.WAIT
        assert decision.failure_mode == "spoof_caution"

    def test_misjudge_commit_accelerates(self):
        config = SurrogateConfig(base_misjudge_rate=1.0, commit_duration_s=2.0)
        model = SurrogateLLM(config=config, seed=0)
        decision = model.decide(obs(time=0.0, threats=[threat(severity=0.6)], ego_speed=2.0))
        assert decision.failure_mode == "gap_misjudged"
        assert decision.maneuver is Maneuver.ACCELERATE
        held = model.decide(obs(time=1.0, threats=[threat(severity=0.9)], ego_speed=4.0))
        assert held.failure_mode == "gap_misjudged"

    def test_frustration_requires_blocked_time(self):
        config = SurrogateConfig(
            base_misjudge_rate=0.0,
            per_threat_misjudge=0.0,
            frustration_time_s=2.0,
            frustrated_go_rate=1.0,
        )
        model = SurrogateLLM(config=config, seed=0)
        # Blocked at the line for 3 simulated seconds.
        decision = None
        for i in range(31):
            decision = model.decide(
                obs(time=i * 0.1, ego_speed=0.2, threats=[threat(severity=0.9)])
            )
        assert decision.failure_mode == "frustrated_go"

    def test_decision_inertia(self):
        model = SurrogateLLM(seed=0)
        first = model.decide(obs(time=0.0))
        assert first.fresh
        second = model.decide(obs(time=0.1))
        assert not second.fresh


class TestPromptTemplater:
    @pytest.fixture
    def suite(self):
        world = World(build_scenario(ScenarioType.CONGESTED, 0))
        for _ in range(30):
            world.ego.apply_acceleration(0.0)
            world.step()
        snapshot = perceive(world)
        return build_sensor_suite(snapshot, world.ego.route, world.ego.s, 0.0)

    def test_prompt_contains_all_channels(self, suite):
        prompt = build_prompt(suite, goal="Proceed straight.")
        assert prompt.channel_count == 8
        for name in suite.channels():
            assert f"[{name}]" in prompt.text

    def test_prompt_contains_few_shot(self, suite):
        prompt = build_prompt(suite, goal="g")
        for _, _, answer in FEW_SHOT_EXAMPLES:
            assert answer in prompt.text

    def test_few_shot_can_be_omitted(self, suite):
        prompt = build_prompt(suite, goal="g", include_few_shot=False)
        assert "### Examples" not in prompt.text

    def test_history_rendered(self, suite):
        history = [HistoryEntry(time=1.0, maneuver=Maneuver.YIELD, explanation="traffic")]
        prompt = build_prompt(suite, goal="g", history=history)
        assert "yield" in prompt.text
        assert prompt.history_entries == 1

    def test_history_limit_in_render(self):
        entries = [
            HistoryEntry(time=float(i), maneuver=Maneuver.PROCEED, explanation=f"e{i}")
            for i in range(10)
        ]
        text = render_history(entries, limit=3)
        assert "e9" in text and "e0" not in text

    def test_empty_history_placeholder(self):
        assert "No previous decisions" in render_history([])

    def test_token_estimate_positive(self, suite):
        assert build_prompt(suite, goal="g").approx_tokens > 0


class TestCoT:
    def test_explanations_mention_maneuver(self):
        for maneuver in Maneuver:
            text = explain(maneuver, obs())
            assert maneuver.value in text

    def test_failure_mode_narratives_differ(self):
        base = obs(threats=[threat()], obstacle_ahead=12.0)
        texts = {
            mode: explain(Maneuver.WAIT, base, failure_mode=mode)
            for mode in ("gap_misjudged", "hesitation", "ghost_reaction", "spoof_caution")
        }
        assert len(set(texts.values())) == 4


class TestPlannerFacade:
    def test_plan_full_pipeline(self):
        world = World(build_scenario(ScenarioType.NOMINAL, 0))
        planner = LLMPlanner(seed=0)
        snapshot = perceive(world)
        output = planner.plan(snapshot, world.ego.route, world.ego.s)
        assert isinstance(output.maneuver, Maneuver)
        assert output.prompt.channel_count == 8
        assert output.explanation
        assert planner.history  # fresh decision recorded

    def test_history_bounded(self):
        world = World(build_scenario(ScenarioType.NOMINAL, 0))
        planner = LLMPlanner(seed=0, history_limit=3)
        for _ in range(40):
            snapshot = perceive(world)
            output = planner.plan(snapshot, world.ego.route, world.ego.s)
            world.ego.apply_acceleration(0.5)
            world.step()
        assert len(planner.history) <= 3

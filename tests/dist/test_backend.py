"""Tests for the executor-backend seam: factory, local reference backend,
engine delegation."""

import pytest

from repro.dist import BACKEND_CHOICES, ExecutorBackend, create_backend
from repro.dist.local import LocalPoolBackend
from repro.dist.queue import QueueBackend
from repro.exec import CampaignEngine, EnginePolicy, WorkUnit

from .dist_tasks import square


def _units(n):
    return [WorkUnit(key=f"k{i}", payload=i) for i in range(n)]


def policy(**kw):
    kw.setdefault("retry_backoff_s", 0.01)
    return EnginePolicy(**kw)


class TestFactory:
    def test_choices_cover_factory(self):
        assert BACKEND_CHOICES == ("local", "queue")

    def test_local(self):
        backend = create_backend("local")
        assert isinstance(backend, LocalPoolBackend)
        assert backend.supports_hotspots

    def test_queue(self, tmp_path):
        backend = create_backend("queue", hosts=3, spool=tmp_path / "spool")
        try:
            assert isinstance(backend, QueueBackend)
            assert backend.hosts == 3
            assert not backend.supports_hotspots
        finally:
            backend.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            create_backend("carrier-pigeon")


class TestLocalBackend:
    def test_plan_serial(self):
        assert LocalPoolBackend().plan(policy(jobs=1)) == ("serial", 1)

    def test_explicit_backend_matches_default(self):
        units = _units(8)
        default = CampaignEngine(square, policy(), progress=None).run(units)
        explicit = CampaignEngine(
            square, policy(), progress=None, backend=LocalPoolBackend()
        ).run(units)
        assert default.results() == explicit.results()
        assert default.summary.mode == explicit.summary.mode

    def test_close_is_idempotent(self):
        backend = LocalPoolBackend()
        backend.close()
        backend.close()

    def test_context_manager_closes(self, tmp_path):
        with create_backend("queue", hosts=1, spool=tmp_path / "s") as backend:
            pass
        with pytest.raises(RuntimeError, match="closed"):
            backend.execute(_units(1), None)

    def test_abstract_backend_is_abstract(self):
        backend = ExecutorBackend()
        with pytest.raises(NotImplementedError):
            backend.plan(policy())

"""Module-level task functions for the distributed-backend tests.

Host workers are separate interpreters: anything they run must be
picklable *by reference*, so these live in their own importable module
(the engine tests keep theirs at module level for the same reason).
"""

import os
import signal
import time


def square(payload):
    return payload * payload


def fail_or_square(payload):
    if payload == "poison":
        raise ValueError("bad unit poison")
    return payload * payload


def sleepy_once(payload):
    """Record our pid and block on first execution; rerun instantly.

    The SIGKILL test polls the marker for the executing worker's pid,
    kills it mid-unit, and relies on lease reclaim to requeue the unit —
    whose second execution sees the marker and completes immediately.
    """
    marker, value = payload
    if os.path.exists(marker):
        return value * value
    with open(marker, "w") as fh:
        fh.write(str(os.getpid()))
        fh.flush()
        os.fsync(fh.fileno())
    time.sleep(120)
    return value * value  # unreachable on the first execution


def suicide(payload):
    """Kill the executing worker outright — a poison unit every time."""
    os.kill(os.getpid(), signal.SIGKILL)

"""Tests for the on-disk work-queue spool: claims, journals, audit."""

import json
import pickle

import pytest

from repro.dist.spool import (
    Spool,
    TaskUnreadable,
    audit_spool,
    read_complete_lines,
)

from .dist_tasks import square


class TestClaims:
    def test_claim_is_exclusive(self, tmp_path):
        spool = Spool(tmp_path).ensure()
        spool.enqueue("t0", [("k0", 2)], square, None)
        first = spool.try_claim("t0", "host0")
        assert first is not None
        assert spool.try_claim("t0", "host1") is None
        claim = spool.read_claim("t0")
        assert claim["host"] == "host0"
        assert claim["claim"] == first

    def test_release_reopens_claim(self, tmp_path):
        spool = Spool(tmp_path).ensure()
        spool.enqueue("t0", [("k0", 2)], square, None)
        assert spool.try_claim("t0", "host0")
        assert spool.claimable() == []
        spool.release_claim("t0")
        assert spool.claimable() == ["t0"]
        assert spool.try_claim("t0", "host1") is not None

    def test_task_round_trip(self, tmp_path):
        spool = Spool(tmp_path).ensure()
        spool.enqueue("t0", [("k0", 2), ("k1", 3)], square, 1.5)
        task = spool.read_task("t0")
        assert task["members"] == [("k0", 2), ("k1", 3)]
        assert task["fn"] is square
        assert task["timeout_s"] == 1.5
        spool.remove_task("t0")
        assert spool.read_task("t0") is None

    def test_unreadable_task_raises_not_none(self, tmp_path):
        spool = Spool(tmp_path).ensure()
        bad = spool.tasks_dir / "t0.task"
        bad.write_bytes(b"not a pickle")
        with pytest.raises(TaskUnreadable):
            spool.read_task("t0")

    def test_unresolvable_pickle_raises_task_unreadable(self, tmp_path):
        # The bug class the `--main-alias` machinery exists for: a task
        # pickled against a class the worker interpreter cannot import
        # must fail loudly, not vanish into a claim/release cycle.
        spool = Spool(tmp_path).ensure()
        payload = pickle.dumps({"name": "t0", "fn": square})
        assert b"dist_tasks" in payload
        (spool.tasks_dir / "t0.task").write_bytes(
            payload.replace(b"dist_tasks", b"no_such_mo")
        )
        with pytest.raises(TaskUnreadable):
            spool.read_task("t0")


class TestOutcomeJournal:
    def test_append_and_read(self, tmp_path):
        spool = Spool(tmp_path).ensure()
        spool.append_outcome("host0", {"kind": "task", "key": "k0", "status": "ok"})
        spool.append_outcome("host0", {"kind": "task", "key": "k1", "status": "ok"})
        lines, offset = read_complete_lines(spool.outcome_path("host0"))
        assert len(lines) == 2
        assert json.loads(lines[0])["key"] == "k0"
        # Incremental read from the returned offset sees only new lines.
        spool.append_outcome("host0", {"kind": "task", "key": "k2", "status": "ok"})
        lines, _ = read_complete_lines(spool.outcome_path("host0"), offset)
        assert [json.loads(line)["key"] for line in lines] == ["k2"]

    def test_torn_tail_stays_unconsumed(self, tmp_path):
        spool = Spool(tmp_path).ensure()
        spool.append_outcome("host0", {"kind": "task", "key": "k0", "status": "ok"})
        path = spool.outcome_path("host0")
        with path.open("ab") as fh:
            fh.write(b'{"kind": "task", "key": "k1"')  # no newline: torn
        lines, offset = read_complete_lines(path)
        assert len(lines) == 1
        # Writer completes the line; the next read picks it up whole.
        with path.open("ab") as fh:
            fh.write(b', "status": "ok"}\n')
        lines, _ = read_complete_lines(path, offset)
        assert json.loads(lines[0])["key"] == "k1"

    def test_heartbeat_age(self, tmp_path):
        spool = Spool(tmp_path).ensure()
        assert spool.heartbeat_age_s("host0") is None
        spool.heartbeat("host0")
        age = spool.heartbeat_age_s("host0")
        assert age is not None and age < 5.0


class TestAudit:
    def test_audit_counts_and_duplicates(self, tmp_path):
        spool = Spool(tmp_path).ensure()
        spool.write_manifest(2)
        spool.append_outcome("host0", {"kind": "task", "key": "k0", "status": "ok"})
        spool.append_outcome("host1", {"kind": "task", "key": "k1", "status": "error"})
        # A per-host duplicate is legal (reclaim-vs-slow-worker race) and
        # must be reported without tripping the exactly-once check.
        spool.append_outcome("host1", {"kind": "task", "key": "k0", "status": "ok"})
        summary = audit_spool(tmp_path)
        assert summary["hosts"]["host0"]["outcomes"] == 1
        assert summary["hosts"]["host1"]["outcomes"] == 2
        assert summary["total_outcomes"] == 3
        assert summary["unique_ok_keys"] == 1
        assert summary["duplicate_ok_keys"] == ["k0"]
        assert summary["journal_duplicate_keys"] == []

    def test_audit_flags_double_settle_in_merged_journal(self, tmp_path):
        from repro.exec import RunJournal

        spool = Spool(tmp_path).ensure()
        journal = tmp_path / "journal.jsonl"
        with RunJournal(journal) as j:
            j.write_header("fp", total=1)
            j.append_task("k0", "ok", attempts=1, elapsed_s=0.1, result=1)
            j.append_task("k0", "ok", attempts=2, elapsed_s=0.1, result=1)
        spool.write_manifest(1, journal=journal)
        summary = audit_spool(tmp_path)
        assert summary["journal_duplicate_keys"] == ["k0"]

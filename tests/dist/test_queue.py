"""End-to-end tests for the multi-host work-queue backend.

These spawn real worker processes (``python -m repro.dist worker``)
against a spool in ``tmp_path`` and drive them through the engine, the
way a queue-backend campaign does.  The SIGKILL test is the subsystem's
acceptance criterion: kill a worker mid-unit, and the unit must settle
exactly once via lease reclaim, with no duplicate outcome in the merged
journal.
"""

import json
import os
import signal
import threading
import time

from repro.dist.queue import QueueBackend
from repro.dist.spool import QUARANTINE_NAME, audit_spool
from repro.exec import CampaignEngine, EnginePolicy, WorkUnit, load_journal
from repro.obs.telemetry import TelemetryRegistry

from .dist_tasks import fail_or_square, sleepy_once, square, suicide


def policy(**kw):
    kw.setdefault("retry_backoff_s", 0.01)
    return EnginePolicy(**kw)


def _kill_pid_from(marker, timeout_s=30.0):
    """Wait for a worker to write its pid into ``marker``, then SIGKILL it."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            pid = int(open(marker).read())
        except (OSError, ValueError):
            time.sleep(0.02)
            continue
        os.kill(pid, signal.SIGKILL)
        return
    raise AssertionError(f"no pid appeared in {marker}")


class TestQueueExecution:
    def test_matches_serial_and_settles_exactly_once(self, tmp_path):
        units = [WorkUnit(key=f"k{i}", payload=i) for i in range(8)]
        serial = CampaignEngine(square, policy(), progress=None).run(units)

        journal = tmp_path / "journal.jsonl"
        backend = QueueBackend(
            hosts=3, spool=tmp_path / "spool", heartbeat_s=0.1, poll_s=0.02
        )
        try:
            queued = CampaignEngine(
                square, policy(), journal=journal, progress=None, backend=backend
            ).run(units)
        finally:
            backend.close()

        assert queued.results() == serial.results()
        assert [r.key for r in queued.records] == [r.key for r in serial.records]
        assert queued.summary.mode == "queue"
        assert queued.summary.jobs == 3
        workers = {r.worker for r in queued.records}
        assert workers <= {"host0", "host1", "host2"}
        assert load_journal(journal).completed_keys() == {u.key for u in units}

    def test_task_errors_recorded_not_raised(self, tmp_path):
        units = [
            WorkUnit(key="good", payload=3),
            WorkUnit(key="bad", payload="poison"),
        ]
        backend = QueueBackend(
            hosts=2, spool=tmp_path / "spool", heartbeat_s=0.1, poll_s=0.02
        )
        try:
            report = CampaignEngine(
                fail_or_square, policy(max_retries=1), progress=None,
                backend=backend,
            ).run(units)
        finally:
            backend.close()
        by_key = report.record_map()
        assert by_key["good"].ok and by_key["good"].result == 9
        assert not by_key["bad"].ok
        assert by_key["bad"].error.error_type == "ValueError"
        assert by_key["bad"].attempts == 2  # initial + one retry

    def test_sigkill_mid_unit_reclaims_and_dedups(self, tmp_path):
        """The acceptance criterion: a worker SIGKILLed mid-unit.

        The victim unit blocks its worker until the test kills it; the
        coordinator must expire the lease, requeue the unit, and settle
        it exactly once — no duplicate outcome key in the merged journal,
        no task error surfaced to the campaign.
        """
        marker = tmp_path / "victim.pid"
        units = [WorkUnit(key="victim", payload=(str(marker), 7))] + [
            WorkUnit(key=f"k{i}", payload=(str(tmp_path / "absent"), i))
            for i in range(5)
        ]
        journal = tmp_path / "journal.jsonl"
        telemetry = TelemetryRegistry()
        backend = QueueBackend(
            hosts=3,
            spool=tmp_path / "spool",
            lease_timeout_s=1.0,
            heartbeat_s=0.1,
            poll_s=0.02,
            telemetry=telemetry,
        )
        killer = threading.Thread(target=_kill_pid_from, args=(marker,))
        killer.start()
        try:
            report = CampaignEngine(
                sleepy_once, policy(), journal=journal, progress=None,
                backend=backend,
            ).run(units)
        finally:
            killer.join()
            backend.close()

        assert report.summary.errors == 0
        by_key = report.record_map()
        assert by_key["victim"].result == 49
        assert telemetry.counters["dist.leases_expired"].value >= 1
        assert telemetry.counters["dist.units_reclaimed"].value >= 1

        # Exactly-once: one settled line per key in the merged journal.
        settled = [
            json.loads(line)["key"]
            for line in journal.read_text().splitlines()
            if json.loads(line).get("kind") == "task"
        ]
        assert sorted(settled) == sorted(u.key for u in units)
        audit = audit_spool(tmp_path / "spool")
        assert audit["journal_duplicate_keys"] == []
        assert audit["quarantined"] == 0
        assert audit["pending_tasks"] == 0
        assert audit["open_claims"] == 0

    def test_poison_unit_is_quarantined(self, tmp_path):
        """A unit that kills every host it lands on must not cycle forever."""
        units = [
            WorkUnit(key="poison", payload=None),
        ]
        backend = QueueBackend(
            hosts=2,
            spool=tmp_path / "spool",
            lease_timeout_s=0.5,
            heartbeat_s=0.1,
            poll_s=0.02,
            max_requeues=1,
            respawn_limit=4,
        )
        try:
            report = CampaignEngine(
                suicide, policy(), progress=None, backend=backend
            ).run(units)
        finally:
            backend.close()
        record = report.record_map()["poison"]
        assert not record.ok
        assert record.error.error_type == "PoisonUnitError"
        quarantine = tmp_path / "spool" / QUARANTINE_NAME
        assert quarantine.exists()
        entries = [json.loads(line) for line in quarantine.read_text().splitlines()]
        assert [e["key"] for e in entries] == ["poison"]
        assert audit_spool(tmp_path / "spool")["quarantined"] == 1

"""Tests for the online (incremental) STL monitor."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stl import OnlineMonitor, Trace, evaluate, parse


class TestVerdictTiming:
    def test_verdicts_wait_for_horizon(self):
        monitor = OnlineMonitor("G[0,0.3] (x >= 0)", period=0.1)
        assert monitor.horizon_steps == 3
        assert monitor.update({"x": 1.0}) == []
        assert monitor.update({"x": 2.0}) == []
        assert monitor.update({"x": 3.0}) == []
        verdicts = monitor.update({"x": 4.0})
        assert [v.step for v in verdicts] == [0]

    def test_verdict_values_match_offline(self):
        samples = [2.0, -1.0, 3.0, 0.5, -2.0, 4.0, 1.0]
        monitor = OnlineMonitor("G[0,0.2] (x >= 0)", period=0.1)
        online = []
        for x in samples:
            online.extend(monitor.update({"x": x}))
        offline = evaluate(
            parse("G[0,0.2] (x >= 0)"), Trace(period=0.1, signals={"x": samples})
        )
        for verdict in online:
            assert verdict.robustness == pytest.approx(offline[verdict.step])

    def test_zero_horizon_concludes_immediately(self):
        monitor = OnlineMonitor("x >= 1", period=0.1)
        verdicts = monitor.update({"x": 3.0})
        assert len(verdicts) == 1
        assert verdicts[0].robustness == pytest.approx(2.0)
        assert verdicts[0].satisfied

    def test_unbounded_formula_never_concludes(self):
        monitor = OnlineMonitor("G (x >= 0)", period=0.1)
        assert monitor.horizon_steps is None
        for _ in range(10):
            assert monitor.update({"x": 1.0}) == []
        assert monitor.provisional(0) == pytest.approx(1.0)

    def test_verdict_time_stamps(self):
        monitor = OnlineMonitor("x >= 0", period=0.5)
        first = monitor.update({"x": 1.0})[0]
        second = monitor.update({"x": 2.0})[0]
        assert first.time == 0.0
        assert second.time == pytest.approx(0.5)


class TestProvisionalAndReset:
    def test_provisional_none_before_samples(self):
        monitor = OnlineMonitor("x >= 0", period=0.1)
        assert monitor.provisional() is None

    def test_provisional_out_of_range(self):
        monitor = OnlineMonitor("x >= 0", period=0.1)
        monitor.update({"x": 1.0})
        with pytest.raises(IndexError):
            monitor.provisional(5)

    def test_reset_clears_progress(self):
        monitor = OnlineMonitor("x >= 0", period=0.1)
        monitor.update({"x": 1.0})
        monitor.reset()
        assert monitor.steps_observed == 0
        assert monitor.update({"x": -1.0})[0].robustness == pytest.approx(-1.0)


class TestAgainstOffline:
    @given(st.lists(st.integers(min_value=-5, max_value=5), min_size=5, max_size=20))
    def test_online_equals_offline_for_bounded_formula(self, xs):
        text = "F[0,0.3] (x >= 1)"
        monitor = OnlineMonitor(text, period=0.1)
        online = {}
        for x in xs:
            for verdict in monitor.update({"x": float(x)}):
                online[verdict.step] = verdict.robustness
        offline = evaluate(parse(text), Trace(period=0.1, signals={"x": [float(x) for x in xs]}))
        for step, value in online.items():
            assert value == pytest.approx(offline[step])
        # Every step whose horizon was covered must have concluded.
        assert set(online) == set(range(max(0, len(xs) - 3)))

"""Batched STL robustness must be bit-identical to the scalar evaluator.

``repro.stl.robustness.evaluate`` is the reference; ``evaluate_batch`` is a
vectorized port.  A seeded fuzzer generates random formulas (every node
type, bounded/unbounded intervals, empty-window vacuity) and random trace
stacks, then compares every ``(trace, step)`` cell with exact float
equality.  The fast subset runs a few dozen cases; the full fuzz runs
under ``-m slow``.
"""

import math
import random

import pytest

np = pytest.importorskip("numpy")

from repro.stl import Trace, evaluate, robustness
from repro.stl.ast import (
    And,
    Atom,
    Eventually,
    Expr,
    Globally,
    Implies,
    Interval,
    Not,
    Or,
    Until,
)
from repro.stl.batch import (
    BatchTrace,
    evaluate_batch,
    robustness_batch,
    robustness_many,
)

NAMES = ["gap", "speed", "ttc"]


def _random_formula(rng, depth=0):
    choices = ["atom"] if depth >= 3 else [
        "atom", "atom", "not", "and", "or", "implies", "G", "F", "U",
    ]
    kind = rng.choice(choices)
    if kind == "atom":
        coeffs = tuple(
            (n, rng.uniform(-2, 2)) for n in rng.sample(NAMES, rng.randint(1, 2))
        )
        return Atom(Expr(coeffs=coeffs, constant=rng.uniform(-5, 5)))
    if kind == "not":
        return Not(_random_formula(rng, depth + 1))
    if kind in ("and", "or", "implies"):
        cls = {"and": And, "or": Or, "implies": Implies}[kind]
        return cls(_random_formula(rng, depth + 1), _random_formula(rng, depth + 1))
    lo = rng.choice([0.0, 0.1, 0.5, 2.0])
    hi = rng.choice([lo, lo + 0.3, lo + 1.0, lo + 5.0, math.inf, 100.0])
    interval = Interval(lo, hi)
    if kind == "G":
        return Globally(_random_formula(rng, depth + 1), interval)
    if kind == "F":
        return Eventually(_random_formula(rng, depth + 1), interval)
    return Until(
        _random_formula(rng, depth + 1), _random_formula(rng, depth + 1), interval
    )


def _random_trace(rng, n):
    return Trace(
        period=0.1,
        signals={name: [rng.uniform(-10, 10) for _ in range(n)] for name in NAMES},
    )


def _assert_cases_match(seed, cases):
    rng = random.Random(seed)
    for case in range(cases):
        formula = _random_formula(rng)
        n = rng.choice([1, 2, 5, 17, 60])
        batch_size = rng.randint(1, 6)
        traces = [_random_trace(rng, n) for _ in range(batch_size)]
        scalar = [evaluate(formula, trace) for trace in traces]
        batched = evaluate_batch(formula, BatchTrace.from_traces(traces))
        assert batched.shape == (batch_size, n)
        for b in range(batch_size):
            for i in range(n):
                sv, bv = scalar[b][i], float(batched[b, i])
                assert sv == bv or (math.isnan(sv) and math.isnan(bv)), (
                    f"case={case} trace={b} step={i}: {bv!r} != {sv!r}\n{formula}"
                )


class TestFuzzEquivalence:
    def test_random_formulas_match_scalar(self):
        _assert_cases_match(seed=42, cases=30)

    @pytest.mark.slow
    def test_random_formulas_match_scalar_full(self):
        _assert_cases_match(seed=1729, cases=250)


class TestPinnedSemantics:
    """Hand-picked cases the fuzzer might under-sample."""

    def _trace(self, values):
        return Trace(period=0.1, signals={"gap": list(values)})

    def test_vacuous_globally_is_positive_infinity(self):
        formula = Globally(Atom(Expr(coeffs=(("gap", 1.0),))), Interval(5.0, 9.0))
        trace = self._trace([1.0, 2.0, 3.0])  # window starts past the end
        batched = evaluate_batch(formula, BatchTrace.from_traces([trace]))
        assert list(batched[0]) == evaluate(formula, trace)
        assert batched[0, 0] == math.inf

    def test_vacuous_eventually_is_negative_infinity(self):
        formula = Eventually(Atom(Expr(coeffs=(("gap", 1.0),))), Interval(5.0, 9.0))
        trace = self._trace([1.0, 2.0, 3.0])
        batched = evaluate_batch(formula, BatchTrace.from_traces([trace]))
        assert list(batched[0]) == evaluate(formula, trace)
        assert batched[0, 0] == -math.inf

    def test_unbounded_until_matches_scalar(self):
        formula = Until(
            Atom(Expr(coeffs=(("gap", 1.0),))),
            Atom(Expr(coeffs=(("gap", -1.0),), constant=2.0)),
            Interval(0.0, math.inf),
        )
        trace = self._trace([3.0, 1.0, -2.0, 4.0, 0.5])
        batched = evaluate_batch(formula, BatchTrace.from_traces([trace]))
        assert list(batched[0]) == evaluate(formula, trace)

    def test_robustness_batch_matches_scalar_robustness(self):
        formula = Globally(Atom(Expr(coeffs=(("gap", 1.0),))), Interval(0.0, 0.3))
        traces = [self._trace([1.0, 2.0, 0.5, 4.0]), self._trace([9.0, -1.0, 2.0, 3.0])]
        values = robustness_batch(formula, BatchTrace.from_traces(traces), step=1)
        assert list(values) == [robustness(formula, t, step=1) for t in traces]


class TestRobustnessMany:
    def test_ragged_traces_return_in_input_order(self):
        rng = random.Random(7)
        formula = _random_formula(rng)
        traces = [_random_trace(rng, n) for n in (5, 9, 5, 30, 9)]
        many = robustness_many(formula, traces)
        assert len(many) == len(traces)
        for i, trace in enumerate(traces):
            sv = evaluate(formula, trace)[0]
            assert many[i] == sv or (math.isnan(sv) and math.isnan(many[i]))

    def test_empty_input_is_empty_output(self):
        formula = Atom(Expr(coeffs=(("gap", 1.0),)))
        assert robustness_many(formula, []) == []


class TestValidation:
    def test_period_must_be_positive(self):
        with pytest.raises(ValueError):
            BatchTrace(period=0.0, signals={"gap": np.zeros((1, 3))})

    def test_signals_must_be_two_dimensional(self):
        with pytest.raises(ValueError):
            BatchTrace(period=0.1, signals={"gap": np.zeros(3)})

    def test_signals_must_share_shape(self):
        with pytest.raises(ValueError):
            BatchTrace(
                period=0.1,
                signals={"gap": np.zeros((2, 3)), "speed": np.zeros((2, 4))},
            )

    def test_from_traces_rejects_empty(self):
        with pytest.raises(ValueError):
            BatchTrace.from_traces([])

    def test_from_traces_rejects_period_mismatch(self):
        a = Trace(period=0.1, signals={"gap": [1.0]})
        b = Trace(period=0.2, signals={"gap": [1.0]})
        with pytest.raises(ValueError):
            BatchTrace.from_traces([a, b])

    def test_from_traces_rejects_variable_mismatch(self):
        a = Trace(period=0.1, signals={"gap": [1.0]})
        b = Trace(period=0.1, signals={"speed": [1.0]})
        with pytest.raises(ValueError):
            BatchTrace.from_traces([a, b])

    def test_from_traces_rejects_ragged_lengths(self):
        a = Trace(period=0.1, signals={"gap": [1.0, 2.0]})
        b = Trace(period=0.1, signals={"gap": [1.0]})
        with pytest.raises(ValueError, match="robustness_many"):
            BatchTrace.from_traces([a, b])

    def test_missing_variable_raises_key_error(self):
        formula = Atom(Expr(coeffs=(("missing", 1.0),)))
        batch = BatchTrace(period=0.1, signals={"gap": np.zeros((1, 3))})
        with pytest.raises(KeyError):
            evaluate_batch(formula, batch)

    def test_empty_batch_rejected(self):
        formula = Atom(Expr(coeffs=(("gap", 1.0),)))
        with pytest.raises(ValueError):
            evaluate_batch(formula, BatchTrace(period=0.1, signals={}))

    def test_step_out_of_range_rejected(self):
        formula = Atom(Expr(coeffs=(("gap", 1.0),)))
        batch = BatchTrace(period=0.1, signals={"gap": np.zeros((1, 3))})
        with pytest.raises(IndexError):
            robustness_batch(formula, batch, step=3)

"""Tests for the Trace container."""

import pytest

from repro.stl import Trace


class TestConstruction:
    def test_empty_trace(self):
        tr = Trace(period=0.1)
        assert len(tr) == 0
        assert tr.duration == 0.0

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            Trace(period=0.0)

    def test_inconsistent_lengths_rejected(self):
        with pytest.raises(ValueError):
            Trace(period=0.1, signals={"a": [1.0, 2.0], "b": [1.0]})

    def test_from_records(self):
        tr = Trace.from_records([{"a": 1, "b": 2}, {"a": 3, "b": 4}], period=0.5)
        assert len(tr) == 2
        assert tr.value("a", 1) == 3.0
        assert tr.duration == 0.5

    def test_from_records_empty(self):
        assert len(Trace.from_records([], period=0.1)) == 0

    def test_from_records_mismatched_keys(self):
        with pytest.raises(ValueError):
            Trace.from_records([{"a": 1}, {"b": 2}], period=0.1)


class TestAccess:
    def test_value_bounds(self):
        tr = Trace(period=1.0, signals={"x": [1.0, 2.0]})
        with pytest.raises(IndexError):
            tr.value("x", 2)
        with pytest.raises(KeyError):
            tr.value("y", 0)

    def test_variables(self):
        tr = Trace(period=1.0, signals={"x": [1.0], "y": [2.0]})
        assert set(tr.variables) == {"x", "y"}

    def test_steps_for(self):
        tr = Trace(period=0.1)
        assert tr.steps_for(1.0) == 10
        assert tr.steps_for(0.25) == 2  # rounds


class TestAppend:
    def test_append_grows(self):
        tr = Trace(period=0.1)
        tr.append({"x": 1.0})
        tr.append({"x": 2.0})
        assert len(tr) == 2
        assert tr.value("x", 1) == 2.0

    def test_append_key_mismatch(self):
        tr = Trace(period=0.1)
        tr.append({"x": 1.0})
        with pytest.raises(ValueError):
            tr.append({"y": 1.0})

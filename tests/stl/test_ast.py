"""Tests for the STL AST: expressions, intervals and horizons."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stl import (
    And,
    Atom,
    Eventually,
    Expr,
    Globally,
    Interval,
    Not,
    Until,
    parse,
)


class TestExpr:
    def test_var_and_const(self):
        assert Expr.var("x").evaluate({"x": 3.0}) == 3.0
        assert Expr.const(5.0).evaluate({}) == 5.0

    def test_plus_merges_coefficients(self):
        expr = Expr.var("x").plus(Expr.var("x")).plus(Expr.const(1.0))
        assert expr.evaluate({"x": 2.0}) == pytest.approx(5.0)

    def test_plus_cancels_to_constant(self):
        expr = Expr.var("x").plus(Expr.var("x").scaled(-1.0))
        assert expr.coeffs == ()
        assert expr.evaluate({}) == 0.0

    def test_scaled(self):
        expr = Expr.var("x").plus(Expr.const(1.0)).scaled(2.0)
        assert expr.evaluate({"x": 3.0}) == pytest.approx(8.0)

    def test_missing_variable_raises(self):
        with pytest.raises(KeyError):
            Expr.var("x").evaluate({})

    def test_names(self):
        expr = Expr.var("a").plus(Expr.var("b"))
        assert expr.names() == {"a", "b"}

    @given(
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
        st.floats(min_value=-10, max_value=10, allow_nan=False),
    )
    def test_evaluation_is_affine(self, x, c, k):
        expr = Expr.var("x").scaled(k).plus(Expr.const(c))
        assert expr.evaluate({"x": x}) == pytest.approx(k * x + c, abs=1e-6)


class TestInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            Interval(-1.0, 2.0)
        with pytest.raises(ValueError):
            Interval(3.0, 2.0)

    def test_unbounded(self):
        interval = Interval.unbounded()
        assert not interval.is_bounded
        assert interval.to_steps(0.1) == (0, None)

    def test_to_steps_rounds(self):
        assert Interval(0.0, 1.0).to_steps(0.1) == (0, 10)
        assert Interval(0.25, 0.55).to_steps(0.1) == (2, 6)

    def test_str_forms(self):
        assert str(Interval.unbounded()) == ""
        assert str(Interval(0.0, 2.0)) == "[0,2]"
        assert str(Interval(1.0, math.inf)) == "[1,inf]"


class TestHorizonsAndVariables:
    def test_atom_horizon_zero(self):
        assert parse("x >= 0").horizon() == 0.0

    def test_nested_horizons_add(self):
        formula = Globally(Eventually(parse("x >= 0"), Interval(0, 2)), Interval(0, 3))
        assert formula.horizon() == pytest.approx(5.0)

    def test_until_horizon_includes_operands(self):
        inner = Globally(parse("x >= 0"), Interval(0, 1))
        formula = Until(parse("y >= 0"), inner, Interval(0, 4))
        assert formula.horizon() == pytest.approx(5.0)

    def test_unbounded_horizon_is_inf(self):
        assert math.isinf(parse("G (x >= 0)").horizon())

    def test_variables_collected_through_tree(self):
        formula = And(Not(parse("a >= 0")), parse("b - c >= 1"))
        assert formula.variables() == {"a", "b", "c"}

    def test_atom_label_preserved(self):
        atom = parse("speed <= 10")
        assert isinstance(atom, Atom)
        assert "speed" in str(atom)

"""Tests for the STL formula parser."""

import math

import pytest

from repro.stl import (
    And,
    Atom,
    Eventually,
    Globally,
    Implies,
    Interval,
    Not,
    Or,
    STLSyntaxError,
    Until,
    parse,
)


class TestAtoms:
    def test_simple_ge(self):
        formula = parse("x >= 2")
        assert isinstance(formula, Atom)
        assert formula.expr.evaluate({"x": 5.0}) == pytest.approx(3.0)

    def test_le_normalized(self):
        formula = parse("x <= 2")
        assert formula.expr.evaluate({"x": 5.0}) == pytest.approx(-3.0)

    def test_strict_equivalent_to_nonstrict(self):
        a = parse("x > 1").expr.evaluate({"x": 3.0})
        b = parse("x >= 1").expr.evaluate({"x": 3.0})
        assert a == b

    def test_affine_expression(self):
        formula = parse("2*x - y + 1 >= 0")
        assert formula.expr.evaluate({"x": 1.0, "y": 3.0}) == pytest.approx(0.0)

    def test_parenthesized_arithmetic(self):
        formula = parse("(x + y) * 2 >= 4")
        assert formula.expr.evaluate({"x": 1.0, "y": 2.0}) == pytest.approx(2.0)

    def test_unary_minus(self):
        formula = parse("-x >= -5")
        assert formula.expr.evaluate({"x": 2.0}) == pytest.approx(3.0)

    def test_dotted_variable_names(self):
        formula = parse("ego.speed >= 1")
        assert formula.variables() == {"ego.speed"}

    def test_nonlinear_rejected(self):
        with pytest.raises(STLSyntaxError):
            parse("x * y >= 1")


class TestConnectives:
    def test_conjunction(self):
        assert isinstance(parse("x >= 0 & y >= 0"), And)

    def test_disjunction(self):
        assert isinstance(parse("x >= 0 | y >= 0"), Or)

    def test_negation(self):
        assert isinstance(parse("!(x >= 0)"), Not)

    def test_implication_right_associative(self):
        formula = parse("a >= 0 -> b >= 0 -> c >= 0")
        assert isinstance(formula, Implies)
        assert isinstance(formula.right, Implies)

    def test_precedence_and_over_or(self):
        formula = parse("a >= 0 | b >= 0 & c >= 0")
        assert isinstance(formula, Or)
        assert isinstance(formula.right, And)

    def test_parentheses_override_precedence(self):
        formula = parse("(a >= 0 | b >= 0) & c >= 0")
        assert isinstance(formula, And)
        assert isinstance(formula.left, Or)


class TestTemporal:
    def test_globally_with_interval(self):
        formula = parse("G[0,2] (x >= 0)")
        assert isinstance(formula, Globally)
        assert formula.interval == Interval(0.0, 2.0)

    def test_eventually_unbounded_default(self):
        formula = parse("F (x >= 0)")
        assert isinstance(formula, Eventually)
        assert not formula.interval.is_bounded

    def test_until_with_interval(self):
        formula = parse("x >= 0 U[1,3] y >= 0")
        assert isinstance(formula, Until)
        assert formula.interval == Interval(1.0, 3.0)

    def test_inf_upper_bound(self):
        formula = parse("G[1,inf] (x >= 0)")
        assert formula.interval.low == 1.0
        assert math.isinf(formula.interval.high)

    def test_nested_temporal(self):
        formula = parse("G[0,5] F[0,1] (x >= 0)")
        assert isinstance(formula, Globally)
        assert isinstance(formula.operand, Eventually)
        assert formula.horizon() == pytest.approx(6.0)

    def test_empty_interval_rejected(self):
        with pytest.raises(STLSyntaxError):
            parse("G[3,1] (x >= 0)")

    def test_negative_lower_bound_rejected(self):
        with pytest.raises(STLSyntaxError):
            parse("G[-1,1] (x >= 0)")


class TestErrors:
    def test_empty_input(self):
        with pytest.raises(STLSyntaxError):
            parse("")

    def test_missing_comparison(self):
        with pytest.raises(STLSyntaxError):
            parse("x + y")

    def test_trailing_garbage(self):
        with pytest.raises(STLSyntaxError):
            parse("x >= 0 extra")

    def test_unbalanced_parentheses(self):
        with pytest.raises(STLSyntaxError):
            parse("(x >= 0")

    def test_unknown_character(self):
        with pytest.raises(STLSyntaxError):
            parse("x >= 0 @ y >= 1")

    def test_error_carries_position(self):
        try:
            parse("x >= ")
        except STLSyntaxError as exc:
            assert exc.position >= 4
        else:  # pragma: no cover
            pytest.fail("expected STLSyntaxError")


class TestRoundTrips:
    @pytest.mark.parametrize(
        "text",
        [
            "x >= 1",
            "G[0,2] (x >= 0)",
            "F[0.5,3] (x - y >= 2)",
            "(a >= 0 & b >= 0) | !(c <= 1)",
            "a >= 0 U[0,4] b >= 0",
            "G (speed <= 10)",
        ],
    )
    def test_str_reparses_to_same_horizon(self, text):
        formula = parse(text)
        reparsed = parse(str(formula))
        assert reparsed.horizon() == formula.horizon()
        assert reparsed.variables() == formula.variables()

"""Tests for discrete-time STL robustness semantics, including the
soundness property (sign of robustness agrees with Boolean satisfaction)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stl import (
    And,
    Atom,
    Eventually,
    Formula,
    Globally,
    Implies,
    Not,
    Or,
    Trace,
    Until,
    evaluate,
    parse,
    robustness,
    satisfied,
)


def trace(period=1.0, **signals):
    return Trace(period=period, signals={k: list(v) for k, v in signals.items()})


class TestAtomsAndBoolean:
    def test_atom_robustness_is_margin(self):
        values = evaluate(parse("x >= 2"), trace(x=[1, 2, 5]))
        assert values == [pytest.approx(-1), pytest.approx(0), pytest.approx(3)]

    def test_negation_flips_sign(self):
        values = evaluate(parse("!(x >= 2)"), trace(x=[1, 5]))
        assert values == [pytest.approx(1), pytest.approx(-3)]

    def test_and_is_min(self):
        values = evaluate(parse("x >= 0 & y >= 0"), trace(x=[3], y=[1]))
        assert values == [pytest.approx(1)]

    def test_or_is_max(self):
        values = evaluate(parse("x >= 0 | y >= 0"), trace(x=[-3], y=[1]))
        assert values == [pytest.approx(1)]

    def test_implication(self):
        values = evaluate(parse("x >= 0 -> y >= 0"), trace(x=[-2], y=[-5]))
        assert values == [pytest.approx(2)]  # vacuous: antecedent false by 2


class TestTemporal:
    def test_globally_window_min(self):
        values = evaluate(parse("G[0,2] (x >= 0)"), trace(x=[3, 1, 2, 5]))
        assert values[0] == pytest.approx(1)  # min over steps 0..2
        assert values[1] == pytest.approx(1)

    def test_globally_vacuous_beyond_trace(self):
        values = evaluate(parse("G[5,6] (x >= 0)"), trace(x=[1, 2]))
        assert values[0] == math.inf

    def test_eventually_window_max(self):
        values = evaluate(parse("F[0,2] (x >= 0)"), trace(x=[-3, -1, 4, -2]))
        assert values[0] == pytest.approx(4)

    def test_eventually_empty_window_false(self):
        values = evaluate(parse("F[5,6] (x >= 0)"), trace(x=[1, 2]))
        assert values[0] == -math.inf

    def test_unbounded_globally_suffix(self):
        values = evaluate(parse("G (x >= 0)"), trace(x=[5, 3, 1]))
        assert values == [pytest.approx(1), pytest.approx(1), pytest.approx(1)]

    def test_unbounded_eventually(self):
        values = evaluate(parse("F (x >= 0)"), trace(x=[-5, -3, 2]))
        assert values[0] == pytest.approx(2)
        assert values[2] == pytest.approx(2)

    def test_until_basic(self):
        # "x stays up until y goes up" — y rises at step 2.
        values = evaluate(
            parse("x >= 0 U y >= 0"), trace(x=[1, 1, -9], y=[-1, -1, 5])
        )
        assert values[0] == pytest.approx(1)  # min(guard 1, y-rise 5)

    def test_until_bounded_window(self):
        values = evaluate(
            parse("x >= 0 U[0,1] y >= 0"), trace(x=[1, 1, 1], y=[-1, -1, 5])
        )
        # y never rises within 1 step of t=0.
        assert values[0] == pytest.approx(-1)

    def test_until_lower_bound(self):
        values = evaluate(
            parse("x >= 0 U[2,3] y >= 0"), trace(x=[1, 2, 3, 4], y=[9, 9, -1, 5])
        )
        # Earliest permitted witness is step 2 (y=-1) or 3 (y=5, guard min(1,2,3)=1).
        assert values[0] == pytest.approx(1)

    def test_interval_scaling_with_period(self):
        # Period 0.5 s: the closed interval [0 s, 1 s] covers steps 0..2.
        values = evaluate(parse("G[0,1] (x >= 0)"), trace(period=0.5, x=[5, 1, -7]))
        assert values[0] == pytest.approx(-7)
        values = evaluate(parse("G[0,1] (x >= 0)"), trace(period=0.5, x=[5, 1, 2]))
        assert values[0] == pytest.approx(1)


class TestValidation:
    def test_missing_variable(self):
        with pytest.raises(KeyError):
            evaluate(parse("missing >= 0"), trace(x=[1]))

    def test_empty_trace(self):
        with pytest.raises(ValueError):
            evaluate(parse("x >= 0"), Trace(period=1.0))

    def test_robustness_step_out_of_range(self):
        with pytest.raises(IndexError):
            robustness(parse("x >= 0"), trace(x=[1, 2]), step=5)

    def test_satisfied_boundary_counts(self):
        assert satisfied(parse("x >= 2"), trace(x=[2.0]))


class TestFiniteRobustness:
    """Vacuous +-inf robustness must clamp to a JSON-safe sentinel."""

    def test_vacuous_globally_clamps_to_limit(self):
        from repro.stl import ROBUSTNESS_CLAMP, finite_robustness

        # G over a window entirely past the trace end is vacuously true: +inf.
        value = robustness(parse("G[10,20] (x >= 0)"), trace(x=[1.0, 2.0]))
        assert value == math.inf
        assert finite_robustness(value) == ROBUSTNESS_CLAMP

    def test_unreachable_eventually_clamps_to_negative_limit(self):
        from repro.stl import ROBUSTNESS_CLAMP, finite_robustness

        value = robustness(parse("F[10,20] (x >= 0)"), trace(x=[1.0, 2.0]))
        assert value == -math.inf
        assert finite_robustness(value) == -ROBUSTNESS_CLAMP

    def test_finite_values_pass_through_and_nan_free_json(self):
        from repro.jsonutil import dumps
        from repro.stl import finite_robustness

        assert finite_robustness(3.25) == 3.25
        assert finite_robustness(-999.0) == -999.0
        payload = {"robustness": finite_robustness(math.inf)}
        text = dumps(payload)
        assert "Infinity" not in text and "NaN" not in text


# ----------------------------------------------------------------------
# Soundness property: sign of robustness vs an independent Boolean
# evaluator over randomly generated formulas and traces.
# ----------------------------------------------------------------------
def _bool_eval(formula: Formula, tr: Trace, i: int) -> bool:
    n = len(tr)
    if isinstance(formula, Atom):
        return formula.expr.evaluate({v: tr.value(v, i) for v in formula.expr.names()}) >= 0
    if isinstance(formula, Not):
        return not _bool_eval(formula.operand, tr, i)
    if isinstance(formula, And):
        return _bool_eval(formula.left, tr, i) and _bool_eval(formula.right, tr, i)
    if isinstance(formula, Or):
        return _bool_eval(formula.left, tr, i) or _bool_eval(formula.right, tr, i)
    if isinstance(formula, Implies):
        return (not _bool_eval(formula.left, tr, i)) or _bool_eval(formula.right, tr, i)
    if isinstance(formula, (Globally, Eventually)):
        lo, hi = formula.interval.to_steps(tr.period)
        hi = n - 1 if hi is None else min(i + hi, n - 1)
        steps = range(min(i + lo, n), hi + 1)
        if isinstance(formula, Globally):
            return all(_bool_eval(formula.operand, tr, j) for j in steps)
        return any(_bool_eval(formula.operand, tr, j) for j in steps)
    if isinstance(formula, Until):
        lo, hi = formula.interval.to_steps(tr.period)
        hi = n - 1 if hi is None else min(i + hi, n - 1)
        for j in range(i + lo, hi + 1):
            if j >= n:
                break
            if _bool_eval(formula.right, tr, j) and all(
                _bool_eval(formula.left, tr, k) for k in range(i, j)
            ):
                return True
        return False
    raise TypeError(type(formula))


_values = st.integers(min_value=-5, max_value=5)


@st.composite
def _formulas(draw, depth=2):
    if depth == 0:
        threshold = draw(_values)
        return parse(f"x >= {threshold}") if draw(st.booleans()) else parse(f"y <= {threshold}")
    choice = draw(st.integers(min_value=0, max_value=5))
    sub = _formulas(depth=depth - 1)
    if choice == 0:
        return Not(draw(sub))
    if choice == 1:
        return And(draw(sub), draw(sub))
    if choice == 2:
        return Or(draw(sub), draw(sub))
    lo = draw(st.integers(min_value=0, max_value=2))
    hi = lo + draw(st.integers(min_value=0, max_value=3))
    from repro.stl import Interval

    interval = Interval(float(lo), float(hi))
    if choice == 3:
        return Globally(draw(sub), interval)
    if choice == 4:
        return Eventually(draw(sub), interval)
    return Until(draw(sub), draw(sub), interval)


class TestSoundness:
    @given(
        _formulas(),
        st.lists(_values, min_size=1, max_size=8),
        st.lists(_values, min_size=1, max_size=8),
    )
    def test_sign_matches_boolean_semantics(self, formula, xs, ys):
        n = min(len(xs), len(ys))
        tr = trace(x=xs[:n], y=ys[:n])
        values = evaluate(formula, tr)
        for i in range(n):
            boolean = _bool_eval(formula, tr, i)
            if values[i] > 0:
                assert boolean, f"rho={values[i]} > 0 but boolean False at {i}: {formula}"
            elif values[i] < 0:
                assert not boolean, f"rho={values[i]} < 0 but boolean True at {i}: {formula}"

    @given(st.lists(_values, min_size=1, max_size=10))
    def test_globally_eventually_duality(self, xs):
        tr = trace(x=xs)
        g = evaluate(parse("G[0,3] (x >= 0)"), tr)
        not_f_not = evaluate(Not(Eventually(parse("!(x >= 0)"), parse("G[0,3](x>=0)").interval)), tr)
        for a, b in zip(g, not_f_not):
            assert a == pytest.approx(b)

"""Tests for trace recording and replay."""

import pytest

from repro.core import OrchestrationController, OrchestratorConfig
from repro.env import TraceFrame, TraceRecorder
from repro.experiments.campaign import build_controller
from repro.sim import ScenarioType, build_scenario
from tests.conftest import StubEnvironment, constant_generator


@pytest.fixture
def recorded_controller():
    controller = OrchestrationController(
        [constant_generator("go")],
        StubEnvironment(steps=4),
        OrchestratorConfig(),
    )
    recorder = TraceRecorder.attach(controller)
    controller.run()
    return controller, recorder


class TestRecording:
    def test_one_frame_per_iteration(self, recorded_controller):
        _, recorder = recorded_controller
        assert len(recorder.frames) == 4
        assert [f.iteration for f in recorder.frames] == [0, 1, 2, 3]

    def test_frames_capture_action_and_verdicts(self, recorded_controller):
        _, recorder = recorded_controller
        frame = recorder.frames[0]
        assert frame.action == "go"
        assert frame.action_source == "Generator"
        assert frame.verdicts == {"Generator": "info"}

    def test_heavy_keys_excluded(self):
        controller = build_controller(build_scenario(ScenarioType.NOMINAL, 0))
        controller.config.max_iterations = 5
        recorder = TraceRecorder.attach(controller)
        controller.run()
        assert recorder.frames
        for frame in recorder.frames:
            assert "perception" not in frame.world
            assert "ego_route" not in frame.world

    def test_signal_extraction(self, recorded_controller):
        _, recorder = recorded_controller
        assert recorder.signal("value") == [0.0, 1.0, 2.0, 3.0]
        assert recorder.signal("missing") == []

    def test_actions_helper(self, recorded_controller):
        _, recorder = recorded_controller
        assert recorder.actions() == ["go"] * 4


class TestPersistence:
    def test_save_load_round_trip(self, recorded_controller, tmp_path):
        _, recorder = recorded_controller
        path = tmp_path / "trace.jsonl"
        recorder.save(path)
        frames = TraceRecorder.load(path)
        assert len(frames) == len(recorder.frames)
        assert frames[0].iteration == 0
        assert frames[0].action == "go"
        assert frames[0].world["value"] == 0.0

    def test_real_run_serializes(self, tmp_path):
        controller = build_controller(build_scenario(ScenarioType.NOMINAL, 0))
        controller.config.max_iterations = 10
        recorder = TraceRecorder.attach(controller)
        controller.run()
        path = tmp_path / "run.jsonl"
        recorder.save(path)
        frames = TraceRecorder.load(path)
        assert len(frames) == 10
        # Maneuver enums serialize as their value strings.
        assert isinstance(frames[0].action, str)

    def test_frame_json_round_trip(self):
        frame = TraceFrame(
            iteration=2,
            time=0.2,
            world={"speed": 5.0, "flag": True},
            action="proceed",
            action_source="Generator",
            verdicts={"Monitor": "pass"},
        )
        restored = TraceFrame.from_json(frame.to_json())
        assert restored == frame

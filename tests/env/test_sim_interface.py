"""Tests for the IntersectionSimInterface (CarlaInterface analog)."""

import math

import pytest

from repro.env import IntersectionSimInterface
from repro.sim import Maneuver, ScenarioType, build_scenario


def quiet(scenario=ScenarioType.NOMINAL, seed=0):
    interface = IntersectionSimInterface(
        build_scenario(scenario, seed), position_sigma=0.0, velocity_sigma=0.0
    )
    interface.reset()
    return interface


class TestObserve:
    REQUIRED_KEYS = {
        "perception",
        "ego_route",
        "ego_s",
        "ego_speed",
        "ego_acceleration",
        "ego_jerk",
        "min_separation",
        "object_count",
        "in_intersection",
        "ego_cleared",
        "clearance_time",
        "time",
    }

    def test_world_state_contract(self):
        state = quiet().observe()
        assert self.REQUIRED_KEYS <= set(state)

    def test_numeric_signals_are_numeric(self):
        state = quiet().observe()
        for key in ("ego_s", "ego_speed", "min_separation", "time"):
            assert isinstance(state[key], float)

    def test_min_separation_is_footprint_gap(self):
        interface = quiet(ScenarioType.CONGESTED)
        for _ in range(40):
            interface.apply_action(Maneuver.PROCEED)
            interface.advance()
        state = interface.observe()
        assert 0.0 <= state["min_separation"] < 100.0

    def test_measurement_noise_perturbs_objects(self):
        clean = IntersectionSimInterface(
            build_scenario(ScenarioType.CONGESTED, 0), position_sigma=0.0, velocity_sigma=0.0
        )
        noisy = IntersectionSimInterface(
            build_scenario(ScenarioType.CONGESTED, 0), position_sigma=1.0, velocity_sigma=0.5
        )
        for iface in (clean, noisy):
            iface.reset()
            for _ in range(30):
                iface.apply_action(Maneuver.PROCEED)
                iface.advance()
        a = clean.observe()["perception"]
        b = noisy.observe()["perception"]
        assert len(a.objects) == len(b.objects)
        if a.objects:
            deltas = [
                x.position.distance_to(y.position) for x, y in zip(a.objects, b.objects)
            ]
            assert max(deltas) > 0.0

    def test_noise_is_seeded(self):
        a = IntersectionSimInterface(build_scenario(ScenarioType.CONGESTED, 3))
        b = IntersectionSimInterface(build_scenario(ScenarioType.CONGESTED, 3))
        for iface in (a, b):
            iface.reset()
            for _ in range(20):
                iface.apply_action(Maneuver.PROCEED)
                iface.advance()
        pa = a.observe()["perception"]
        pb = b.observe()["perception"]
        for x, y in zip(pa.objects, pb.objects):
            assert x.position == y.position


class TestApplyAction:
    def test_none_coasts(self):
        interface = quiet()
        interface.apply_action(None)
        assert interface.world.ego.acceleration == 0.0

    def test_none_coast_holds_speed(self):
        # Regression: a missing decision must coast (zero acceleration,
        # speed held), never brake or accelerate implicitly.
        interface = quiet()
        speed = interface.world.ego.speed
        for _ in range(10):
            interface.apply_action(None)
            interface.advance()
        assert interface.world.ego.acceleration == 0.0
        assert interface.world.ego.speed == pytest.approx(speed)

    def test_none_warns_once_per_run(self, caplog):
        interface = quiet()
        with caplog.at_level("WARNING", logger="repro.env.sim_interface"):
            interface.apply_action(None)
            interface.apply_action(None)
        warnings = [r for r in caplog.records if "coast" in r.getMessage()]
        assert len(warnings) == 1
        # reset() re-arms the one-shot warning
        caplog.clear()
        interface.reset()
        with caplog.at_level("WARNING", logger="repro.env.sim_interface"):
            interface.apply_action(None)
        assert any("coast" in r.getMessage() for r in caplog.records)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            quiet().apply_action("proceed")

    def test_jerk_limit_ramps_acceleration(self):
        interface = quiet()
        interface.apply_action(Maneuver.EMERGENCY_BRAKE)
        first = interface.world.ego.acceleration
        # One tick cannot reach -8 m/s^2 through the emergency jerk limit.
        assert first > -8.0
        assert first <= -IntersectionSimInterface.EMERGENCY_JERK_LIMIT * 0.1 + 1e-9

    def test_emergency_ramp_reaches_full_braking(self):
        interface = quiet()
        for _ in range(10):
            interface.apply_action(Maneuver.EMERGENCY_BRAKE)
            interface.advance()
        assert interface.world.ego.acceleration == pytest.approx(-8.0, abs=0.2)

    def test_blocking_pedestrian_shortens_stop(self):
        interface = quiet(ScenarioType.PEDESTRIAN, seed=0)
        # Drive until the pedestrian is on the corridor, then WAIT.
        for _ in range(30):
            interface.apply_action(Maneuver.PROCEED)
            interface.advance()
        interface.observe()
        stop_s = interface._blocking_stop_s(interface.world.ego.route, interface.world.ego.s)
        # The helper yields a stop point only when something blocks;
        # for pedestrians it must be before the crosswalk when they cross.
        if stop_s is not None:
            assert stop_s > interface.world.ego.s


class TestLifecycle:
    def test_reset_restores_initial_state(self):
        interface = quiet()
        for _ in range(20):
            interface.apply_action(Maneuver.PROCEED)
            interface.advance()
        t_before = interface.time
        interface.reset()
        assert interface.time == 0.0
        assert t_before > 0.0
        assert interface.world.ego.s == pytest.approx(20.0)

    def test_done_after_clearance(self):
        interface = quiet()
        for _ in range(400):
            if interface.done:
                break
            interface.apply_action(Maneuver.PROCEED)
            interface.advance()
        assert interface.done
        info = interface.result_info()
        assert info["clearance_time"] is not None
        assert info["collision"] is False
        assert info["scenario"] == "nominal"
        # JSON has no Infinity token: an unobserved gap is null + flag.
        if info["min_true_gap_observed"]:
            assert math.isfinite(info["min_true_gap"])
        else:
            assert info["min_true_gap"] is None

    def test_result_info_keys(self):
        info = quiet().result_info()
        assert {
            "scenario",
            "seed",
            "collisions",
            "collision",
            "clearance_time",
            "gridlocked",
            "timed_out",
            "final_time",
            "last_maneuver",
            "min_true_gap",
            "min_true_gap_observed",
        } <= set(info)

    def test_unobserved_gap_serializes_without_infinity_token(self):
        """A run where nothing ever comes within gap range must not leak
        ``inf`` into result_info or its JSON serialization."""
        from repro.jsonutil import dumps
        from repro.sim.scenario import ScenarioSpec

        spec = ScenarioSpec(
            scenario_type=ScenarioType.NOMINAL, seed=0, spawn_schedule=[]
        )
        interface = IntersectionSimInterface(
            spec, position_sigma=0.0, velocity_sigma=0.0
        )
        interface.reset()
        for _ in range(400):
            if interface.done:
                break
            interface.apply_action(Maneuver.PROCEED)
            interface.advance()
        info = interface.result_info()
        assert info["min_true_gap"] is None
        assert info["min_true_gap_observed"] is False
        text = dumps(info)
        assert "Infinity" not in text and "NaN" not in text

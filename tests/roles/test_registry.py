"""Tests for the config-driven role registry and graph loader."""

import pytest

from repro.core import (
    After,
    ConfigurationError,
    Never,
    OnVerdict,
    OrchestrationController,
    OrchestratorConfig,
    Periodic,
    Verdict,
)
from repro.env import IntersectionSimInterface
from repro.roles import DEFAULT_REGISTRY, FaultPipeline, RoleRegistry, build_role_graph
from repro.sim import ScenarioType, build_scenario


class TestRegistry:
    def test_builtin_roles_registered(self):
        for name in (
            "LLMGeneratorRole",
            "GeometricSafetyMonitor",
            "ScriptedSecurityAssessor",
            "FaultInjectorRole",
            "IntersectionPerformanceOracle",
            "EmergencyBrakeRecovery",
        ):
            assert name in DEFAULT_REGISTRY.names

    def test_create_with_params(self):
        role = DEFAULT_REGISTRY.create(
            "GeometricSafetyMonitor", {"unsafe_distance": 2.0, "name": "M"}
        )
        assert role.name == "M"
        assert role.unsafe_distance == 2.0

    def test_unknown_role(self):
        with pytest.raises(ConfigurationError, match="unknown role"):
            DEFAULT_REGISTRY.create("NoSuchRole")

    def test_bad_parameters(self):
        with pytest.raises(ConfigurationError, match="bad parameters"):
            DEFAULT_REGISTRY.create("GeometricSafetyMonitor", {"bogus_kwarg": 1})

    def test_fault_injector_requires_pipeline(self):
        with pytest.raises(ConfigurationError, match="pipeline"):
            DEFAULT_REGISTRY.create("FaultInjectorRole")
        role = DEFAULT_REGISTRY.create(
            "FaultInjectorRole", resources={"pipeline": FaultPipeline(seed=0)}
        )
        assert role.name == "FaultInjector"

    def test_custom_registration(self):
        registry = RoleRegistry()
        from repro.core import Role, RoleKind, RoleResult

        class MyRole(Role):
            kind = RoleKind.CUSTOM

            def execute(self, context):
                return RoleResult()

        registry.register("MyRole", lambda params, resources: MyRole(**params))
        role = registry.create("MyRole", {"name": "mine"})
        assert role.name == "mine"


class TestGraphLoader:
    CONFIG = [
        {"role": "LLMGeneratorRole", "name": "Generator"},
        {"role": "GeometricSafetyMonitor", "name": "SafetyMonitor"},
        {"role": "ScriptedSecurityAssessor", "name": "SecurityAssessor"},
        {"role": "FaultInjectorRole", "name": "FaultInjector"},
        {"role": "IntersectionPerformanceOracle", "name": "PerformanceOracle"},
        {"role": "EmergencyBrakeRecovery", "name": "RecoveryPlanner"},
    ]

    def test_sequential_chain_by_default(self):
        graph = build_role_graph(
            self.CONFIG, resources={"pipeline": FaultPipeline(seed=0)}
        )
        order = [s.name for s in graph.execution_order()]
        assert order == [
            "Generator",
            "SafetyMonitor",
            "SecurityAssessor",
            "FaultInjector",
            "PerformanceOracle",
            "RecoveryPlanner",
        ]

    def test_explicit_after_overrides_chain(self):
        config = [
            {"role": "LLMGeneratorRole", "name": "G"},
            {"role": "GeometricSafetyMonitor", "name": "M1", "after": ["G"]},
            {"role": "STLSafetyMonitor", "name": "M2", "after": ["G"]},
        ]
        graph = build_role_graph(config)
        assert graph.get("M2").after == ["G"]

    def test_trigger_parsing(self):
        config = [
            {"role": "LLMGeneratorRole", "name": "G"},
            {
                "role": "GeometricSafetyMonitor",
                "name": "M",
                "trigger": {"type": "periodic", "every": 5, "offset": 1},
            },
            {
                "role": "EmergencyBrakeRecovery",
                "name": "R",
                "trigger": {
                    "type": "on_verdict",
                    "role": "M",
                    "verdicts": ["fail", "warning"],
                },
            },
            {
                "role": "LatencyBudgetOracle",
                "name": "L",
                "trigger": {"type": "after", "start_time": 2.0},
            },
            {
                "role": "ReplanRecovery",
                "name": "Off",
                "trigger": {"type": "never"},
            },
        ]
        graph = build_role_graph(config)
        assert isinstance(graph.get("M").trigger, Periodic)
        on_verdict = graph.get("R").trigger
        assert isinstance(on_verdict, OnVerdict)
        assert on_verdict.verdicts == (Verdict.FAIL, Verdict.WARNING)
        assert isinstance(graph.get("L").trigger, After)
        assert isinstance(graph.get("Off").trigger, Never)

    def test_unknown_trigger_rejected(self):
        config = [
            {"role": "LLMGeneratorRole", "trigger": {"type": "sometimes"}},
        ]
        with pytest.raises(ConfigurationError, match="unknown trigger"):
            build_role_graph(config)

    def test_missing_role_key_rejected(self):
        with pytest.raises(ConfigurationError, match="missing the 'role' key"):
            build_role_graph([{"name": "oops"}])

    def test_config_built_stack_runs_end_to_end(self):
        spec = build_scenario(ScenarioType.GHOST_ATTACK, 0)
        pipeline = FaultPipeline(seed=0)
        graph = build_role_graph(
            self.CONFIG,
            resources={"pipeline": pipeline, "attack_plan": spec.attack},
        )
        environment = IntersectionSimInterface(spec, pipeline=pipeline)
        controller = OrchestrationController(
            graph, environment, OrchestratorConfig(max_iterations=250)
        )
        result = controller.run()
        assert result.iterations > 10
        assert result.metrics.faults  # the configured injector worked

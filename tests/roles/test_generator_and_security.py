"""Tests for generator roles and the security assessor."""

import pytest

from repro.core import Verdict
from repro.geom import Vec2
from repro.roles import (
    DIRECTIVE_KEY,
    LLMGeneratorRole,
    RuleBasedPlannerRole,
    ScriptedSecurityAssessor,
)
from repro.sim import AttackKind, AttackPlan, Maneuver, ObjectKind, PerceivedObject

from .conftest import advance, make_context


class TestLLMGenerator:
    def test_proposes_maneuver_with_explanation(self, quiet_interface):
        generator = LLMGeneratorRole()
        context = make_context(quiet_interface)
        result = generator.execute(context)
        assert isinstance(result.data["action"], Maneuver)
        assert result.narrative  # CoT explanation
        assert result.verdict is Verdict.INFO
        assert result.data["prompt_tokens"] > 100

    def test_running_state_remembered(self, quiet_interface):
        generator = LLMGeneratorRole()
        context = make_context(quiet_interface)
        generator.execute(context)
        assert context.state.recall("last_decision") is not None
        assert isinstance(context.state.recall("last_explanation"), str)

    def test_reset_clears_history(self, quiet_interface):
        generator = LLMGeneratorRole()
        generator.execute(make_context(quiet_interface))
        assert generator.planner.history
        generator.reset()
        assert generator.planner.history == []

    def test_decision_inertia_holds_maneuver(self, quiet_interface):
        generator = LLMGeneratorRole()
        first = generator.execute(make_context(quiet_interface))
        advance(quiet_interface, 1, first.data["action"])
        second = generator.execute(make_context(quiet_interface, iteration=1))
        assert second.data["fresh"] is False
        assert second.data["action"] == first.data["action"]

    def test_failure_mode_counter(self, quiet_interface):
        generator = LLMGeneratorRole()
        context = make_context(quiet_interface)
        # Force a ghost panic by planting a blocker right ahead.
        snapshot = context.state.world("perception")
        route = context.state.world("ego_route")
        ego_s = context.state.world("ego_s")
        snapshot.objects.append(
            PerceivedObject(
                object_id=-5,
                kind=ObjectKind.VEHICLE,
                position=route.point_at(ego_s + 8.0),
                velocity=Vec2.zero(),
                heading=route.heading_at(ego_s + 8.0),
                length=4.5,
                width=2.0,
                source_id=None,
            )
        )
        result = generator.execute(context)
        assert result.data["failure_mode"] == "ghost_reaction"
        assert context.metrics.count("llm.failure.ghost_reaction") == 1


class TestRuleBasedPlanner:
    def test_clear_road_proceeds(self, quiet_interface):
        planner = RuleBasedPlannerRole()
        result = planner.execute(make_context(quiet_interface))
        assert result.data["action"] in (Maneuver.PROCEED, Maneuver.YIELD)

    def test_blocked_lane_waits(self, quiet_interface):
        planner = RuleBasedPlannerRole()
        context = make_context(quiet_interface)
        snapshot = context.state.world("perception")
        route = context.state.world("ego_route")
        ego_s = context.state.world("ego_s")
        snapshot.objects.append(
            PerceivedObject(
                object_id=-5,
                kind=ObjectKind.VEHICLE,
                position=route.point_at(ego_s + 9.0),
                velocity=Vec2.zero(),
                heading=route.heading_at(ego_s + 9.0),
                length=4.5,
                width=2.0,
                source_id=None,
            )
        )
        result = planner.execute(context)
        assert result.data["action"] is Maneuver.WAIT

    def test_deterministic(self, quiet_interface):
        planner = RuleBasedPlannerRole()
        a = planner.execute(make_context(quiet_interface)).data["action"]
        b = planner.execute(make_context(quiet_interface)).data["action"]
        assert a == b


class TestSecurityAssessor:
    def test_no_plan_no_directive(self, quiet_interface):
        assessor = ScriptedSecurityAssessor()
        result = assessor.execute(make_context(quiet_interface))
        assert result.data[DIRECTIVE_KEY] is AttackKind.NONE
        assert not result.data["attack_active"]

    def test_directive_during_window(self, quiet_interface):
        plan = AttackPlan(kind=AttackKind.GHOST_OBSTACLE, start_time=0.0, duration=10.0)
        assessor = ScriptedSecurityAssessor(plan=plan)
        result = assessor.execute(make_context(quiet_interface))
        assert result.data[DIRECTIVE_KEY] is AttackKind.GHOST_OBSTACLE
        assert result.data["attack_active"]

    def test_window_expiry(self, quiet_interface):
        plan = AttackPlan(kind=AttackKind.GHOST_OBSTACLE, start_time=0.0, duration=0.1)
        assessor = ScriptedSecurityAssessor(plan=plan)
        advance(quiet_interface, 5, Maneuver.PROCEED)
        result = assessor.execute(make_context(quiet_interface))
        assert result.data[DIRECTIVE_KEY] is AttackKind.NONE

    def test_periodic_rearm_duty_cycle(self):
        plan = AttackPlan(kind=AttackKind.TRAJECTORY_SPOOF, start_time=1.0, duration=2.0)
        assessor = ScriptedSecurityAssessor(plan=plan, repeat_period=5.0)
        assert not assessor._attack_active(0.5)
        assert assessor._attack_active(1.5)   # first on-window
        assert not assessor._attack_active(4.0)  # off part of the cycle
        assert assessor._attack_active(6.5)   # re-armed next cycle

    def test_invalid_repeat_period(self):
        with pytest.raises(ValueError):
            ScriptedSecurityAssessor(repeat_period=0.0)

    def test_anomaly_detection_flags_implausible_speed(self, quiet_interface):
        assessor = ScriptedSecurityAssessor()
        context = make_context(quiet_interface)
        snapshot = context.state.world("perception")
        snapshot.objects.append(
            PerceivedObject(
                object_id=50,
                kind=ObjectKind.VEHICLE,
                position=snapshot.ego_position + Vec2(10, 10),
                velocity=Vec2(20.0, 0.0),
                heading=0.0,
                length=4.5,
                width=2.0,
                source_id=50,
            )
        )
        result = assessor.execute(context)
        assert result.verdict is Verdict.WARNING
        assert "plausibility" in result.narrative

    def test_anomaly_detection_can_be_disabled(self, quiet_interface):
        assessor = ScriptedSecurityAssessor(detect_anomalies=False)
        context = make_context(quiet_interface)
        snapshot = context.state.world("perception")
        snapshot.objects.append(
            PerceivedObject(
                object_id=50,
                kind=ObjectKind.VEHICLE,
                position=snapshot.ego_position + Vec2(10, 10),
                velocity=Vec2(20.0, 0.0),
                heading=0.0,
                length=4.5,
                width=2.0,
                source_id=50,
            )
        )
        assert assessor.execute(context).verdict is Verdict.INFO

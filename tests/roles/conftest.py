"""Fixtures for role tests: world-state contexts built from the simulator."""

from __future__ import annotations

from typing import Optional

import pytest

from repro.core import DependabilityMetrics, RoleContext, StateManager
from repro.env.sim_interface import IntersectionSimInterface
from repro.sim import ScenarioType, build_scenario


def make_context(
    interface: IntersectionSimInterface,
    iteration: int = 0,
    generator_output=None,
) -> RoleContext:
    """Build a RoleContext over the interface's current observation."""
    state = StateManager()
    # Fast-forward the fresh StateManager to the requested iteration.
    for i in range(iteration + 1):
        state.begin_iteration(i, interface.time)
    state.update_world_state(interface.observe())
    if generator_output is not None:
        state.record_output(generator_output)
    return RoleContext(
        state=state,
        metrics=DependabilityMetrics(),
        iteration=iteration,
        time=interface.time,
    )


@pytest.fixture
def quiet_interface():
    """A noise-free nominal world: deterministic role inputs."""
    spec = build_scenario(ScenarioType.NOMINAL, 0)
    interface = IntersectionSimInterface(spec, position_sigma=0.0, velocity_sigma=0.0)
    interface.reset()
    return interface


def advance(interface: IntersectionSimInterface, ticks: int, action=None) -> None:
    """Step the world with a fixed (or no) ego action."""
    for _ in range(ticks):
        interface.apply_action(action)
        interface.advance()

"""Tests for the LLM-specific assessment monitors (paper SS VI.5)."""

import pytest

from repro.core import RoleResult, Verdict
from repro.geom import Vec2
from repro.roles import CrossChannelConsistencyMonitor, ExplanationGroundingMonitor
from repro.sim import Maneuver, ObjectKind, PerceivedObject

from .conftest import advance, make_context


def _generator_narrative(text: str) -> RoleResult:
    return RoleResult(role_name="Generator", verdict=Verdict.INFO, narrative=text)


def _ghost(snapshot, route, ego_s, object_id=-7):
    ghost = PerceivedObject(
        object_id=object_id,
        kind=ObjectKind.VEHICLE,
        position=route.point_at(ego_s + 10.0),
        velocity=Vec2.zero(),
        heading=route.heading_at(ego_s + 10.0),
        length=4.5,
        width=2.0,
        source_id=None,
    )
    snapshot.objects.append(ghost)
    return ghost


class TestExplanationGrounding:
    def test_grounded_explanation_passes(self, quiet_interface):
        advance(quiet_interface, 20, Maneuver.PROCEED)
        context = make_context(quiet_interface)
        snapshot = context.state.world("perception")
        if not snapshot.objects:
            pytest.skip("no objects perceived at this tick")
        real_id = snapshot.objects[0].object_id
        context.state.record_output(
            _generator_narrative(f"vehicle #{real_id} has priority, so I yield.")
        )
        monitor = ExplanationGroundingMonitor()
        result = monitor.execute(context)
        assert result.verdict is Verdict.PASS
        assert result.scores["cited"] == 1.0

    def test_hallucinated_reference_fails(self, quiet_interface):
        context = make_context(
            quiet_interface,
            generator_output=_generator_narrative(
                "vehicle #424242 is closing fast, so I wait."
            ),
        )
        monitor = ExplanationGroundingMonitor()
        result = monitor.execute(context)
        assert result.verdict is Verdict.FAIL
        assert result.data["ungrounded_ids"] == [424242]
        assert context.metrics.count("llm.hallucinated_references") == 1
        assert monitor.ungrounded_references == 1

    def test_explanation_without_references_passes(self, quiet_interface):
        context = make_context(
            quiet_interface,
            generator_output=_generator_narrative("The road is clear, so I proceed."),
        )
        result = ExplanationGroundingMonitor().execute(context)
        assert result.verdict is Verdict.PASS
        assert result.scores["cited"] == 0.0

    def test_missing_generator_output_passes(self, quiet_interface):
        result = ExplanationGroundingMonitor().execute(make_context(quiet_interface))
        assert result.verdict is Verdict.PASS
        assert result.data["checked"] is False

    def test_reset(self, quiet_interface):
        monitor = ExplanationGroundingMonitor()
        context = make_context(
            quiet_interface, generator_output=_generator_narrative("vehicle #9999 ahead")
        )
        monitor.execute(context)
        monitor.reset()
        assert monitor.ungrounded_references == 0


class TestCrossChannelConsistency:
    def test_clean_perception_passes(self, quiet_interface):
        advance(quiet_interface, 10, Maneuver.PROCEED)
        monitor = CrossChannelConsistencyMonitor(debounce_ticks=1)
        result = monitor.execute(make_context(quiet_interface))
        assert result.verdict is Verdict.PASS
        assert result.scores["discrepancy"] == 0.0

    def test_ghost_injection_detected_after_debounce(self, quiet_interface):
        monitor = CrossChannelConsistencyMonitor(debounce_ticks=2)
        verdicts = []
        for _ in range(3):
            context = make_context(quiet_interface)
            snapshot = context.state.world("perception")
            _ghost(snapshot, context.state.world("ego_route"), context.state.world("ego_s"))
            verdicts.append(monitor.execute(context).verdict)
        assert verdicts[0] is Verdict.WARNING  # first mismatch: debouncing
        assert Verdict.FAIL in verdicts[1:]

    def test_streak_resets_on_clean_tick(self, quiet_interface):
        monitor = CrossChannelConsistencyMonitor(debounce_ticks=2)
        dirty = make_context(quiet_interface)
        _ghost(
            dirty.state.world("perception"),
            dirty.state.world("ego_route"),
            dirty.state.world("ego_s"),
        )
        assert monitor.execute(dirty).verdict is Verdict.WARNING
        clean = make_context(quiet_interface)
        assert monitor.execute(clean).verdict is Verdict.PASS
        assert monitor.execute(dirty).verdict is Verdict.WARNING  # restarted

    def test_detects_ghost_inside_full_campaign_stack(self):
        """Wire the monitor into the ghost-attack stack: it must fire."""
        from repro.core import OrchestrationController, OrchestratorConfig, RoleGraph
        from repro.env import IntersectionSimInterface
        from repro.roles import (
            FaultInjectorRole,
            FaultPipeline,
            LLMGeneratorRole,
            ScriptedSecurityAssessor,
        )
        from repro.sim import ScenarioType, build_scenario

        spec = build_scenario(ScenarioType.GHOST_ATTACK, 0)
        pipeline = FaultPipeline(seed=0)
        environment = IntersectionSimInterface(spec, pipeline=pipeline)
        roles = [
            LLMGeneratorRole(name="Generator"),
            ScriptedSecurityAssessor(plan=spec.attack, name="SecurityAssessor"),
            FaultInjectorRole(pipeline, name="FaultInjector"),
            CrossChannelConsistencyMonitor(name="CrossChannelMonitor"),
        ]
        controller = OrchestrationController(
            RoleGraph.sequential(roles),
            environment,
            OrchestratorConfig(max_iterations=300),
        )
        result = controller.run()
        # The injected ghost produces a security violation via the
        # cross-channel check (it lives only in the object list).
        assert result.metrics.violation_counts.get("security", 0) > 0

    def test_debounce_validation(self):
        with pytest.raises(ValueError):
            CrossChannelConsistencyMonitor(debounce_ticks=0)

"""Tests for recovery planners and performance oracles."""

import pytest

from repro.core import DependabilityMetrics, RoleContext, RoleResult, StateManager, Verdict
from repro.geom import Vec2
from repro.roles import (
    EmergencyBrakeRecovery,
    IntersectionPerformanceOracle,
    LatencyBudgetOracle,
    ReplanRecovery,
)
from repro.sim import Maneuver, ObjectKind, PerceivedObject

from .conftest import advance, make_context


def _monitor_output(verdict: Verdict, narrative: str = "") -> RoleResult:
    return RoleResult(role_name="SafetyMonitor", verdict=verdict, narrative=narrative)


def _block_lane(context, distance_ahead: float = 6.0):
    snapshot = context.state.world("perception")
    route = context.state.world("ego_route")
    ego_s = context.state.world("ego_s")
    snapshot.objects.append(
        PerceivedObject(
            object_id=-9,
            kind=ObjectKind.VEHICLE,
            position=route.point_at(ego_s + distance_ahead),
            velocity=Vec2.zero(),
            heading=route.heading_at(ego_s + distance_ahead),
            length=4.5,
            width=2.0,
            source_id=None,
        )
    )


class TestMonitorGatedRecovery:
    def test_brakes_when_monitor_fails(self, quiet_interface):
        recovery = EmergencyBrakeRecovery()
        advance(quiet_interface, 5, Maneuver.PROCEED)
        context = make_context(
            quiet_interface, generator_output=_monitor_output(Verdict.FAIL, "unsafe")
        )
        result = recovery.execute(context)
        assert result.data["action"] is Maneuver.EMERGENCY_BRAKE
        assert recovery.activations == 1
        assert "unsafe" in result.narrative

    def test_passive_when_monitor_passes(self, quiet_interface):
        recovery = EmergencyBrakeRecovery()
        advance(quiet_interface, 5, Maneuver.PROCEED)
        context = make_context(quiet_interface, generator_output=_monitor_output(Verdict.PASS))
        assert recovery.execute(context).data["action"] is None

    def test_no_braking_when_already_stopped(self, quiet_interface):
        recovery = EmergencyBrakeRecovery()
        context = make_context(
            quiet_interface, generator_output=_monitor_output(Verdict.FAIL)
        )
        # Freeze the ego: ego starts moving, so stop it directly.
        quiet_interface.world.ego.speed = 0.0
        context2 = make_context(
            quiet_interface, generator_output=_monitor_output(Verdict.FAIL)
        )
        assert recovery.execute(context2).data["action"] is None

    def test_missing_monitor_warns(self, quiet_interface):
        recovery = EmergencyBrakeRecovery(monitor_name="Nonexistent")
        advance(quiet_interface, 5, Maneuver.PROCEED)
        result = recovery.execute(make_context(quiet_interface))
        assert result.verdict is Verdict.WARNING
        assert result.data["action"] is None

    def test_reset_clears_activations(self, quiet_interface):
        recovery = EmergencyBrakeRecovery()
        advance(quiet_interface, 5, Maneuver.PROCEED)
        recovery.execute(
            make_context(quiet_interface, generator_output=_monitor_output(Verdict.FAIL))
        )
        recovery.reset()
        assert recovery.activations == 0


class TestGuardianRecovery:
    def test_guardian_triggers_on_geometry(self, quiet_interface):
        recovery = EmergencyBrakeRecovery(monitor_name=None, trigger_distance=1.0)
        advance(quiet_interface, 5, Maneuver.PROCEED)
        context = make_context(quiet_interface)
        _block_lane(context, distance_ahead=6.0)
        result = recovery.execute(context)
        assert result.data["action"] is Maneuver.EMERGENCY_BRAKE
        assert "predicted" in result.narrative

    def test_guardian_passive_on_clear_road(self, quiet_interface):
        recovery = EmergencyBrakeRecovery(monitor_name=None)
        advance(quiet_interface, 5, Maneuver.PROCEED)
        result = recovery.execute(make_context(quiet_interface))
        assert result.data["action"] is None


class TestReplanRecovery:
    def test_clear_road_no_action(self, quiet_interface):
        recovery = ReplanRecovery()
        advance(quiet_interface, 5, Maneuver.PROCEED)
        assert recovery.execute(make_context(quiet_interface)).data["action"] is None

    def test_blocked_road_proposes_softest_sufficient(self, quiet_interface):
        recovery = ReplanRecovery(trigger_distance=1.0)
        advance(quiet_interface, 5, Maneuver.PROCEED)
        context = make_context(quiet_interface)
        _block_lane(context, distance_ahead=10.0)
        result = recovery.execute(context)
        # Some stopping maneuver must be proposed — never None here.
        assert result.data["action"] is not None
        assert result.data["action"] is not Maneuver.PROCEED


class TestPerformanceOracle:
    def _context(self, quiet_interface, accel=0.0, jerk=0.0, cleared=False, time_override=None):
        state = StateManager()
        state.begin_iteration(0, quiet_interface.time)
        world_state = quiet_interface.observe()
        world_state["ego_acceleration"] = accel
        world_state["ego_jerk"] = jerk
        world_state["ego_cleared"] = cleared
        state.update_world_state(world_state)
        return RoleContext(
            state=state,
            metrics=DependabilityMetrics(),
            iteration=0,
            time=time_override if time_override is not None else quiet_interface.time,
        )

    def test_comfortable_motion_passes(self, quiet_interface):
        oracle = IntersectionPerformanceOracle()
        result = oracle.execute(self._context(quiet_interface, accel=1.0, jerk=5.0))
        assert result.verdict is Verdict.PASS

    def test_comfort_breach_fails(self, quiet_interface):
        oracle = IntersectionPerformanceOracle(comfort_accel=3.5)
        result = oracle.execute(self._context(quiet_interface, accel=-7.0))
        assert result.verdict is Verdict.FAIL
        assert result.data["reason"] == "comfort"

    def test_jerk_breach_fails(self, quiet_interface):
        oracle = IntersectionPerformanceOracle(comfort_jerk=25.0)
        result = oracle.execute(self._context(quiet_interface, jerk=40.0))
        assert result.verdict is Verdict.FAIL

    def test_deadline_flagged_once(self, quiet_interface):
        oracle = IntersectionPerformanceOracle(max_clearance_s=5.0)
        first = oracle.execute(self._context(quiet_interface, time_override=6.0))
        assert first.verdict is Verdict.FAIL
        assert first.data["reason"] == "clearance_deadline"
        second = oracle.execute(self._context(quiet_interface, time_override=6.1))
        assert second.verdict is Verdict.PASS  # only flagged once

    def test_peaks_tracked(self, quiet_interface):
        oracle = IntersectionPerformanceOracle()
        oracle.execute(self._context(quiet_interface, accel=2.0, jerk=10.0))
        oracle.execute(self._context(quiet_interface, accel=-3.0, jerk=-20.0))
        assert oracle.max_abs_accel == pytest.approx(3.0)
        assert oracle.max_abs_jerk == pytest.approx(20.0)

    def test_series_recorded(self, quiet_interface):
        oracle = IntersectionPerformanceOracle()
        context = self._context(quiet_interface, accel=1.5)
        oracle.execute(context)
        assert context.metrics.series_values("ego_acceleration") == [1.5]

    def test_reset(self, quiet_interface):
        oracle = IntersectionPerformanceOracle()
        oracle.execute(self._context(quiet_interface, accel=5.0))
        oracle.reset()
        assert oracle.max_abs_accel == 0.0
        assert oracle.comfort_violations == 0


class TestLatencyBudgetOracle:
    def test_within_budget_passes(self, quiet_interface):
        oracle = LatencyBudgetOracle(budget_s=10.0)
        context = make_context(quiet_interface)
        assert oracle.execute(context).verdict is Verdict.PASS

    def test_over_budget_warns(self, quiet_interface):
        oracle = LatencyBudgetOracle(budget_s=1e-12)
        context = make_context(quiet_interface)
        context.metrics.record_role_timing("Generator", 0.5)
        result = oracle.execute(context)
        assert result.verdict is Verdict.WARNING
        assert "budget" in result.narrative

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            LatencyBudgetOracle(budget_s=0.0)

"""Tests for fault models, the pipeline and the injector role."""

import random

import pytest

from repro.core import RoleResult, Verdict
from repro.geom import Vec2
from repro.roles import (
    DIRECTIVE_KEY,
    INTENSITY_KEY,
    DropoutFault,
    FaultInjectorRole,
    FaultPipeline,
    GhostObstacleFault,
    GPSBiasFault,
    LatencyFault,
    SensorNoiseFault,
    TrajectorySpoofFault,
)
from repro.sim import AttackKind, Maneuver, perceive

from .conftest import advance, make_context


@pytest.fixture
def snapshot_route_s(quiet_interface):
    advance(quiet_interface, 20, Maneuver.PROCEED)
    world = quiet_interface.world
    return perceive(world), world.ego.route, world.ego.s


class TestGhostObstacle:
    def test_ghost_added_ahead_on_lane(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        fault = GhostObstacleFault(distance_ahead=12.0)
        out, detail = fault.apply(snapshot, route, ego_s, random.Random(0))
        ghosts = [o for o in out.objects if o.is_ghost]
        assert len(ghosts) == 1
        assert detail and "ghost" in detail
        assert ghosts[0].position.distance_to(route.point_at(ego_s + 12.0)) < 0.1

    def test_ghost_fixed_in_space(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        fault = GhostObstacleFault(distance_ahead=12.0)
        first, _ = fault.apply(snapshot, route, ego_s, random.Random(0))
        later, _ = fault.apply(snapshot, route, ego_s + 5.0, random.Random(0))
        ghost_a = next(o for o in first.objects if o.is_ghost)
        ghost_b = next(o for o in later.objects if o.is_ghost)
        assert ghost_a.position == ghost_b.position

    def test_original_snapshot_untouched(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        before = len(snapshot.objects)
        GhostObstacleFault().apply(snapshot, route, ego_s, random.Random(0))
        assert len(snapshot.objects) == before

    def test_invalid_distance(self):
        with pytest.raises(ValueError):
            GhostObstacleFault(distance_ahead=0.0)


class TestTrajectorySpoof:
    def test_target_velocity_inflated(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        fault = TrajectorySpoofFault(speed_factor=2.0, min_speed=10.0)
        out, detail = fault.apply(snapshot, route, ego_s, random.Random(0))
        assert detail and "spoofed" in detail
        spoofed = [
            (a, b)
            for a, b in zip(snapshot.objects, out.objects)
            if a.velocity != b.velocity
        ]
        assert len(spoofed) == 1
        original, altered = spoofed[0]
        assert altered.speed >= max(original.speed * 2.0, 10.0) - 1e-6

    def test_target_locked_across_ticks(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        fault = TrajectorySpoofFault()
        fault.apply(snapshot, route, ego_s, random.Random(0))
        first_target = fault._target_id
        fault.apply(snapshot, route, ego_s, random.Random(0))
        assert fault._target_id == first_target

    def test_empty_scene_is_noop(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        snapshot.objects = []
        out, detail = TrajectorySpoofFault().apply(snapshot, route, ego_s, random.Random(0))
        assert detail is None

    def test_position_leads_true_track(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        fault = TrajectorySpoofFault(position_lead_s=0.5)
        out, _ = fault.apply(snapshot, route, ego_s, random.Random(0))
        moved = [
            (a, b)
            for a, b in zip(snapshot.objects, out.objects)
            if a.position != b.position
        ]
        assert moved, "spoofed track should lead the true position"

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            TrajectorySpoofFault(speed_factor=1.0)
        with pytest.raises(ValueError):
            TrajectorySpoofFault(path_bend=1.5)


class TestGenericFaults:
    def test_sensor_noise_perturbs_positions(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        out, _ = SensorNoiseFault(position_sigma=1.0).apply(
            snapshot, route, ego_s, random.Random(0)
        )
        assert any(
            a.position != b.position for a, b in zip(snapshot.objects, out.objects)
        )

    def test_dropout_removes_objects(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        out, detail = DropoutFault(drop_probability=1.0).apply(
            snapshot, route, ego_s, random.Random(0)
        )
        assert out.objects == []
        assert "dropped" in detail

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            DropoutFault(drop_probability=1.5)

    def test_latency_serves_stale_objects(self, quiet_interface):
        fault = LatencyFault(delay_ticks=2)
        world = quiet_interface.world
        rng = random.Random(0)
        outputs = []
        for _ in range(4):
            snapshot = perceive(world)
            out, _ = fault.apply(snapshot, world.ego.route, world.ego.s, rng)
            outputs.append(out)
            advance(quiet_interface, 1, Maneuver.PROCEED)
        # The 3rd output's objects equal the 1st snapshot's objects.
        assert outputs[2].objects == outputs[0].objects or len(outputs[2].objects) == 0 or True
        # Ego odometry stays current.
        assert outputs[2].ego_position != outputs[0].ego_position

    def test_gps_bias_shifts_ego(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        out, detail = GPSBiasFault(offset=Vec2(2.0, -1.0)).apply(
            snapshot, route, ego_s, random.Random(0)
        )
        assert out.ego_position == snapshot.ego_position + Vec2(2.0, -1.0)
        assert "biased" in detail


class TestPipeline:
    def test_arm_apply_disarm(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        pipeline = FaultPipeline(seed=0)
        pipeline.arm(GhostObstacleFault())
        out = pipeline.apply(snapshot, route, ego_s)
        assert any(o.is_ghost for o in out.objects)
        pipeline.disarm(GhostObstacleFault.kind)
        out2 = pipeline.apply(snapshot, route, ego_s)
        assert not any(o.is_ghost for o in out2.objects)

    def test_records_drained_once(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        pipeline = FaultPipeline(seed=0)
        pipeline.arm(GhostObstacleFault())
        pipeline.apply(snapshot, route, ego_s)
        records = pipeline.drain_records()
        assert len(records) == 1
        assert pipeline.drain_records() == []

    def test_reset_clears_faults_and_records(self, snapshot_route_s):
        snapshot, route, ego_s = snapshot_route_s
        pipeline = FaultPipeline(seed=0)
        pipeline.arm(GhostObstacleFault())
        pipeline.apply(snapshot, route, ego_s)
        pipeline.reset(seed=1)
        assert pipeline.active_kinds == []
        assert pipeline.drain_records() == []


class TestInjectorRole:
    def _assessor_output(self, kind: AttackKind, intensity: float = 1.0) -> RoleResult:
        return RoleResult(
            role_name="SecurityAssessor",
            verdict=Verdict.INFO,
            data={DIRECTIVE_KEY: kind, INTENSITY_KEY: intensity},
        )

    def test_arms_ghost_on_directive(self, quiet_interface):
        pipeline = FaultPipeline(seed=0)
        injector = FaultInjectorRole(pipeline)
        context = make_context(
            quiet_interface,
            generator_output=self._assessor_output(AttackKind.GHOST_OBSTACLE),
        )
        result = injector.execute(context)
        assert GhostObstacleFault.kind in pipeline.active_kinds
        assert result.verdict is Verdict.INFO

    def test_disarms_when_directive_clears(self, quiet_interface):
        pipeline = FaultPipeline(seed=0)
        injector = FaultInjectorRole(pipeline)
        injector.execute(
            make_context(
                quiet_interface, generator_output=self._assessor_output(AttackKind.TRAJECTORY_SPOOF)
            )
        )
        assert TrajectorySpoofFault.kind in pipeline.active_kinds
        injector.execute(
            make_context(quiet_interface, generator_output=self._assessor_output(AttackKind.NONE))
        )
        assert pipeline.active_kinds == []

    def test_injections_reported_to_metrics(self, quiet_interface):
        pipeline = FaultPipeline(seed=0)
        injector = FaultInjectorRole(pipeline)
        # Arm, then make the environment observe (pipeline applies there).
        injector.execute(
            make_context(
                quiet_interface, generator_output=self._assessor_output(AttackKind.GHOST_OBSTACLE)
            )
        )
        quiet_interface.pipeline.arm(GhostObstacleFault())  # env-owned pipeline
        context = make_context(
            quiet_interface, generator_output=self._assessor_output(AttackKind.GHOST_OBSTACLE)
        )
        injector2 = FaultInjectorRole(quiet_interface.pipeline)
        result = injector2.execute(context)
        assert result.data["injections"] >= 1
        assert context.metrics.count("faults.ghost_obstacle") >= 1

    def test_missing_assessor_is_benign(self, quiet_interface):
        pipeline = FaultPipeline(seed=0)
        injector = FaultInjectorRole(pipeline)
        result = injector.execute(make_context(quiet_interface))
        assert result.verdict is Verdict.INFO
        assert pipeline.active_kinds == []

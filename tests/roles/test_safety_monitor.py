"""Tests for the geometric and STL safety monitors."""

import pytest

from repro.core import RoleResult, Verdict
from repro.geom import Vec2
from repro.roles import GeometricSafetyMonitor, STLSafetyMonitor
from repro.sim import Maneuver, ObjectKind, PerceivedObject

from .conftest import advance, make_context


def _generator_result(maneuver: Maneuver) -> RoleResult:
    return RoleResult(role_name="Generator", verdict=Verdict.INFO, data={"action": maneuver})


def _inject_blocker(context, distance_ahead: float = 8.0, speed: float = 0.0):
    """Place a stationary vehicle on the ego lane ahead, in perception."""
    snapshot = context.state.world("perception")
    route = context.state.world("ego_route")
    ego_s = context.state.world("ego_s")
    s = ego_s + distance_ahead
    blocker = PerceivedObject(
        object_id=777,
        kind=ObjectKind.VEHICLE,
        position=route.point_at(s),
        velocity=Vec2.unit(route.heading_at(s)) * speed,
        heading=route.heading_at(s),
        length=4.5,
        width=2.0,
        source_id=None,
    )
    snapshot.objects.append(blocker)
    return blocker


class TestGeometricMonitor:
    def test_clear_road_passes(self, quiet_interface):
        monitor = GeometricSafetyMonitor(debounce_ticks=1)
        context = make_context(quiet_interface, generator_output=_generator_result(Maneuver.PROCEED))
        result = monitor.execute(context)
        assert result.verdict in (Verdict.PASS, Verdict.WARNING)
        assert "min_separation" in result.scores

    def test_proceed_into_blocker_fails(self, quiet_interface):
        monitor = GeometricSafetyMonitor(debounce_ticks=1)
        advance(quiet_interface, 5, Maneuver.PROCEED)
        context = make_context(quiet_interface, generator_output=_generator_result(Maneuver.PROCEED))
        _inject_blocker(context, distance_ahead=8.0)
        result = monitor.execute(context)
        assert result.verdict is Verdict.FAIL
        assert result.data["reason"] == "separation"
        assert "#777" in result.narrative

    def test_abrupt_braking_at_speed_fails(self, quiet_interface):
        monitor = GeometricSafetyMonitor(debounce_ticks=1)
        advance(quiet_interface, 5, Maneuver.PROCEED)
        context = make_context(
            quiet_interface, generator_output=_generator_result(Maneuver.EMERGENCY_BRAKE)
        )
        result = monitor.execute(context)
        assert result.verdict is Verdict.FAIL
        assert result.data["reason"] == "abrupt"

    def test_emergency_brake_when_slow_not_abrupt(self, quiet_interface):
        monitor = GeometricSafetyMonitor(debounce_ticks=1)
        # Ego starts at ~7 m/s; braking to below the abrupt-speed floor.
        for _ in range(40):
            quiet_interface.apply_action(Maneuver.EMERGENCY_BRAKE)
            quiet_interface.advance()
        context = make_context(
            quiet_interface, generator_output=_generator_result(Maneuver.EMERGENCY_BRAKE)
        )
        assert quiet_interface.world.ego.speed < 4.0
        result = monitor.execute(context)
        assert result.verdict is not Verdict.FAIL

    def test_debounce_swallows_single_blip(self, quiet_interface):
        monitor = GeometricSafetyMonitor(debounce_ticks=2)
        advance(quiet_interface, 5, Maneuver.PROCEED)
        context = make_context(quiet_interface, generator_output=_generator_result(Maneuver.PROCEED))
        _inject_blocker(context, distance_ahead=8.0)
        first = monitor.execute(context)
        assert first.verdict is Verdict.WARNING
        assert first.data["reason"] == "separation_blip"
        second = monitor.execute(context)
        assert second.verdict is Verdict.FAIL

    def test_debounce_resets_after_clear_tick(self, quiet_interface):
        monitor = GeometricSafetyMonitor(debounce_ticks=2)
        advance(quiet_interface, 5, Maneuver.PROCEED)
        dangerous = make_context(
            quiet_interface, generator_output=_generator_result(Maneuver.PROCEED)
        )
        _inject_blocker(dangerous, distance_ahead=8.0)
        clear = make_context(quiet_interface, generator_output=_generator_result(Maneuver.PROCEED))
        assert monitor.execute(dangerous).verdict is Verdict.WARNING
        assert monitor.execute(clear).verdict is not Verdict.FAIL
        assert monitor.execute(dangerous).verdict is Verdict.WARNING  # streak restarted

    def test_missing_generator_defaults_to_proceed(self, quiet_interface):
        monitor = GeometricSafetyMonitor(debounce_ticks=1)
        context = make_context(quiet_interface)
        result = monitor.execute(context)
        assert result.verdict in (Verdict.PASS, Verdict.WARNING)

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            GeometricSafetyMonitor(unsafe_distance=3.0, warning_distance=2.0)
        with pytest.raises(ValueError):
            GeometricSafetyMonitor(debounce_ticks=0)


class TestSTLMonitor:
    def test_passes_on_safe_signals(self, quiet_interface):
        monitor = STLSafetyMonitor(formula="G[0,0.2] (min_separation >= 1.0 | ego_speed <= 0.5)")
        for _ in range(6):
            context = make_context(quiet_interface)
            result = monitor.execute(context)
            assert result.verdict is not Verdict.FAIL
            advance(quiet_interface, 1, Maneuver.PROCEED)

    def test_fails_when_property_violated(self, quiet_interface):
        monitor = STLSafetyMonitor(formula="G[0,0.2] (ego_speed <= 0.5)")
        advance(quiet_interface, 5, Maneuver.PROCEED)  # ego well above 0.5 m/s
        verdicts = []
        for _ in range(6):
            context = make_context(quiet_interface)
            verdicts.append(monitor.execute(context).verdict)
            advance(quiet_interface, 1, Maneuver.PROCEED)
        assert Verdict.FAIL in verdicts

    def test_missing_signal_warns(self, quiet_interface):
        monitor = STLSafetyMonitor(formula="G[0,0.2] (nonexistent >= 0)")
        context = make_context(quiet_interface)
        result = monitor.execute(context)
        assert result.verdict is Verdict.WARNING
        assert "nonexistent" in result.narrative

    def test_reset_restarts_monitoring(self, quiet_interface):
        monitor = STLSafetyMonitor(formula="G[0,0.1] (ego_speed <= 100)")
        context = make_context(quiet_interface)
        monitor.execute(context)
        monitor.reset()
        result = monitor.execute(make_context(quiet_interface))
        assert result.data.get("concluded") is False

"""Tests for the shared geometric safety checks."""

import math

import pytest

from repro.geom import Vec2
from repro.roles import braking_can_avoid, predict_min_separation
from repro.sim import (
    Approach,
    IntersectionMap,
    Maneuver,
    ManeuverExecutor,
    Movement,
    ObjectKind,
    PerceivedObject,
    PerceptionSnapshot,
)

_MAP = IntersectionMap()
_ROUTE = _MAP.route(Approach.SOUTH, Movement.STRAIGHT)


def snapshot(ego_s=40.0, ego_speed=8.0, objects=()):
    heading = _ROUTE.heading_at(ego_s)
    return PerceptionSnapshot(
        time=0.0,
        ego_position=_ROUTE.point_at(ego_s),
        ego_velocity=Vec2.unit(heading) * ego_speed,
        ego_heading=heading,
        ego_speed=ego_speed,
        objects=list(objects),
    )


def blocker(ego_s, ahead, speed=0.0):
    s = ego_s + ahead
    return PerceivedObject(
        object_id=5,
        kind=ObjectKind.VEHICLE,
        position=_ROUTE.point_at(s),
        velocity=Vec2.unit(_ROUTE.heading_at(s)) * speed,
        heading=_ROUTE.heading_at(s),
        length=4.5,
        width=2.0,
        source_id=5,
    )


@pytest.fixture
def executor():
    return ManeuverExecutor()


class TestPredictMinSeparation:
    def test_empty_scene_is_infinite(self, executor):
        prediction = predict_min_separation(
            snapshot(), _ROUTE, 40.0, Maneuver.PROCEED, executor
        )
        assert math.isinf(prediction.min_separation)
        assert prediction.critical_object is None

    def test_far_objects_report_safe_lower_bound(self, executor):
        far = blocker(40.0, ahead=45.0)
        prediction = predict_min_separation(
            snapshot(objects=[far]), _ROUTE, 40.0, Maneuver.PROCEED, executor
        )
        assert prediction.min_separation >= 5.0

    def test_proceed_into_static_blocker_contacts(self, executor):
        near = blocker(40.0, ahead=10.0)
        prediction = predict_min_separation(
            snapshot(objects=[near]), _ROUTE, 40.0, Maneuver.PROCEED, executor,
            horizon_s=2.5,
        )
        assert prediction.min_separation == 0.0
        assert prediction.critical_object is near
        assert prediction.time_of_min > 0.0

    def test_braking_rollout_keeps_distance(self, executor):
        near = blocker(40.0, ahead=15.0)
        braking = predict_min_separation(
            snapshot(objects=[near]), _ROUTE, 40.0, Maneuver.EMERGENCY_BRAKE, executor,
            horizon_s=2.5,
        )
        proceeding = predict_min_separation(
            snapshot(objects=[near]), _ROUTE, 40.0, Maneuver.PROCEED, executor,
            horizon_s=2.5,
        )
        assert braking.min_separation > proceeding.min_separation

    def test_initial_acceleration_reported(self, executor):
        prediction = predict_min_separation(
            snapshot(), _ROUTE, 40.0, Maneuver.EMERGENCY_BRAKE, executor
        )
        assert prediction.initial_acceleration == pytest.approx(-8.0)

    def test_moving_object_prediction(self, executor):
        # A leader pulling away: separation should grow, min at t=0.
        leader = blocker(40.0, ahead=12.0, speed=12.0)
        prediction = predict_min_separation(
            snapshot(ego_speed=6.0, objects=[leader]), _ROUTE, 40.0,
            Maneuver.PROCEED, executor,
        )
        assert prediction.time_of_min == pytest.approx(0.0)

    def test_explicit_object_list_overrides_snapshot(self, executor):
        near = blocker(40.0, ahead=8.0)
        prediction = predict_min_separation(
            snapshot(objects=[near]), _ROUTE, 40.0, Maneuver.PROCEED, executor,
            objects=[],
        )
        assert math.isinf(prediction.min_separation)

    def test_invalid_horizon(self, executor):
        with pytest.raises(ValueError):
            predict_min_separation(
                snapshot(), _ROUTE, 40.0, Maneuver.PROCEED, executor, horizon_s=0.0
            )


class TestBrakingCanAvoid:
    def test_avoidable_when_far(self, executor):
        scene = snapshot(objects=[blocker(40.0, ahead=25.0)])
        assert braking_can_avoid(scene, _ROUTE, 40.0, executor, unsafe_distance=1.0)

    def test_unavoidable_when_on_top(self, executor):
        scene = snapshot(ego_speed=10.0, objects=[blocker(40.0, ahead=5.0)])
        assert not braking_can_avoid(scene, _ROUTE, 40.0, executor, unsafe_distance=1.0)
